#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "gen/barabasi_albert.hpp"
#include "gen/dataset_suite.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/planted.hpp"
#include "gen/regular.hpp"
#include "gen/rmat.hpp"
#include "gen/watts_strogatz.hpp"
#include "graph/types.hpp"

namespace rept::gen {
namespace {

// Shared invariants every generator must satisfy.
void CheckSimpleStream(const EdgeStream& stream) {
  std::unordered_set<uint64_t> seen;
  for (const Edge& e : stream) {
    EXPECT_LT(e.u, stream.num_vertices());
    EXPECT_LT(e.v, stream.num_vertices());
    EXPECT_FALSE(e.IsSelfLoop());
    EXPECT_TRUE(seen.insert(EdgeKey(e)).second)
        << "duplicate edge " << e.u << "-" << e.v;
  }
}

TEST(ErdosRenyiTest, ExactEdgeCountAndSimplicity) {
  const EdgeStream s = ErdosRenyi({.num_vertices = 50, .num_edges = 300}, 1);
  EXPECT_EQ(s.size(), 300u);
  EXPECT_EQ(s.num_vertices(), 50u);
  CheckSimpleStream(s);
}

TEST(ErdosRenyiTest, FullDensityPossible) {
  const EdgeStream s = ErdosRenyi({.num_vertices = 10, .num_edges = 45}, 2);
  EXPECT_EQ(s.size(), 45u);  // complete graph reached by rejection sampling
  CheckSimpleStream(s);
}

TEST(ErdosRenyiTest, Deterministic) {
  const EdgeStream a = ErdosRenyi({.num_vertices = 30, .num_edges = 100}, 9);
  const EdgeStream b = ErdosRenyi({.num_vertices = 30, .num_edges = 100}, 9);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(EdgeKey(a[i]), EdgeKey(b[i]));
  }
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  // Seed K_{m+1} contributes C(m+1,2); each later vertex adds m edges.
  const uint32_t m = 3;
  const VertexId n = 100;
  const EdgeStream s =
      BarabasiAlbert({.num_vertices = n, .edges_per_vertex = m}, 3);
  const uint64_t expected = (m + 1) * m / 2 + (n - (m + 1)) * m;
  EXPECT_EQ(s.size(), expected);
  CheckSimpleStream(s);
}

TEST(BarabasiAlbertTest, HeavyTailEmerges) {
  const EdgeStream s =
      BarabasiAlbert({.num_vertices = 2000, .edges_per_vertex = 2}, 4);
  std::vector<uint32_t> degree(s.num_vertices(), 0);
  for (const Edge& e : s) {
    ++degree[e.u];
    ++degree[e.v];
  }
  const uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  // Preferential attachment should create hubs far above the mean (~4).
  EXPECT_GT(max_degree, 40u);
}

TEST(HolmeKimTest, TriadClosureRaisesTriangles) {
  // Compare a rough wedge-closure proxy: count edges whose endpoints share a
  // neighbor at generation end, via the exactness of the stream invariants
  // here; full triangle comparisons live in exact_counts_test.
  const EdgeStream low = HolmeKim(
      {.num_vertices = 500, .edges_per_vertex = 4, .triad_probability = 0.0},
      5);
  const EdgeStream high = HolmeKim(
      {.num_vertices = 500, .edges_per_vertex = 4, .triad_probability = 0.95},
      5);
  CheckSimpleStream(low);
  CheckSimpleStream(high);
  EXPECT_EQ(low.size(), high.size());  // same edge budget, different wiring
}

TEST(RmatTest, RespectsScaleAndTargets) {
  const EdgeStream s = Rmat({.scale = 10, .num_edges = 4000}, 6);
  EXPECT_EQ(s.num_vertices(), 1024u);
  EXPECT_EQ(s.size(), 4000u);
  CheckSimpleStream(s);
}

TEST(RmatTest, SkewProducesHubs) {
  const EdgeStream s = Rmat(
      {.scale = 12, .num_edges = 20000, .a = 0.7, .b = 0.1, .c = 0.1, .d = 0.1},
      7);
  std::vector<uint32_t> degree(s.num_vertices(), 0);
  for (const Edge& e : s) {
    ++degree[e.u];
    ++degree[e.v];
  }
  const uint32_t max_degree = *std::max_element(degree.begin(), degree.end());
  EXPECT_GT(max_degree, 200u);  // mean degree is ~10; hubs dominate
}

TEST(WattsStrogatzTest, LatticeEdgeCount) {
  const EdgeStream s =
      WattsStrogatz({.num_vertices = 200, .k = 4, .beta = 0.0}, 8);
  // Unrewired ring lattice: exactly n*k/2 edges.
  EXPECT_EQ(s.size(), 400u);
  CheckSimpleStream(s);
}

TEST(WattsStrogatzTest, RewiringKeepsSimplicity) {
  const EdgeStream s =
      WattsStrogatz({.num_vertices = 300, .k = 6, .beta = 0.3}, 9);
  CheckSimpleStream(s);
  EXPECT_GT(s.size(), 800u);  // rare rewires may collide and drop
}

TEST(RegularFamiliesTest, SizesAndSimplicity) {
  EXPECT_EQ(Complete(6).size(), 15u);
  EXPECT_EQ(Star(7).size(), 7u);
  EXPECT_EQ(Path(9).size(), 8u);
  EXPECT_EQ(Cycle(9).size(), 9u);
  EXPECT_EQ(Wheel(5).size(), 10u);
  EXPECT_EQ(CompleteBipartite(3, 4).size(), 12u);
  EXPECT_EQ(Grid(3, 4).size(), 17u);
  for (const EdgeStream& s :
       {Complete(6), Star(7), Path(9), Cycle(9), Wheel(5),
        CompleteBipartite(3, 4), Grid(3, 4)}) {
    CheckSimpleStream(s);
  }
}

TEST(PlantedCliquesTest, LowerBoundStructure) {
  const EdgeStream s = PlantedCliques({.num_vertices = 200,
                                       .background_edges = 100,
                                       .num_cliques = 4,
                                       .clique_size = 6},
                                      10);
  CheckSimpleStream(s);
  // 4 disjoint K_6 = 4*15 clique edges; background may overlap cliques so
  // total is at most 60 + 100.
  EXPECT_GE(s.size(), 60u + 90u);
  EXPECT_LE(s.size(), 160u);
}

class DatasetSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSuiteTest, GeneratesDeterministicSimpleStream) {
  const std::string name = GetParam();
  auto a = MakeDataset(name, DatasetSize::kTiny, 42);
  auto b = MakeDataset(name, DatasetSize::kTiny, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->size(), 500u);
  EXPECT_EQ(a->name(), name);
  CheckSimpleStream(*a);
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(EdgeKey((*a)[i]), EdgeKey((*b)[i]));
  }
}

TEST_P(DatasetSuiteTest, SeedChangesStream) {
  const std::string name = GetParam();
  auto a = MakeDataset(name, DatasetSize::kTiny, 1);
  auto b = MakeDataset(name, DatasetSize::kTiny, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differs = a->size() != b->size();
  if (!differs) {
    for (size_t i = 0; i < a->size(); ++i) {
      if (EdgeKey((*a)[i]) != EdgeKey((*b)[i])) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSuiteTest,
    ::testing::Values("twitter-sim", "orkut-sim", "livejournal-sim",
                      "pokec-sim", "flickr-sim", "wikitalk-sim",
                      "webgoogle-sim", "youtube-sim"));

TEST(DatasetSuiteTest, UnknownNameRejected) {
  EXPECT_EQ(MakeDataset("no-such-graph").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetSuiteTest, CatalogHasEightEntries) {
  EXPECT_EQ(DatasetCatalog().size(), 8u);
}

TEST(DatasetSuiteTest, MakeSuiteProducesAll) {
  const auto suite = MakeSuite(DatasetSize::kTiny, 42);
  ASSERT_EQ(suite.size(), 8u);
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name(), DatasetCatalog()[i].name);
  }
}

}  // namespace
}  // namespace rept::gen
