// Checkpoint inspector: the debugging entry point for the durable session
// format (docs/checkpoint_format.md). Prints the header (format version,
// config fingerprint), every section with its size and CRC verdict, and the
// per-instance stored-edge counts — without needing the session config that
// wrote the file.
//
//   build/tools/rept_ckpt_dump my_session.ckpt [more.ckpt ...]
//
// Run without arguments to see it on a freshly generated demo checkpoint
// (written to the system temp dir), so the tool is runnable out of the box.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "core/rept_estimator.hpp"
#include "core/streaming_estimator.hpp"
#include "graph/edge_source.hpp"
#include "persist/checkpoint.hpp"
#include "persist/checkpoint_io.hpp"
#include "util/flags.hpp"

namespace {

const char* SectionName(uint32_t id) {
  switch (id) {
    case rept::kSectionReptMeta:
      return "rept-meta";
    case rept::kSectionReptInstance:
      return "rept-instance";
    case rept::kSectionEnsembleMeta:
      return "ensemble-meta";
    case rept::kSectionEnsembleInstance:
      return "ensemble-instance";
    default:
      return "unknown";
  }
}

// Returns 0 when the file parsed clean, 1 otherwise.
int DumpOne(const std::string& path) {
  const rept::CheckpointInfo info = rept::InspectCheckpoint(path);
  std::printf("checkpoint %s (%" PRIu64 " bytes)\n", path.c_str(),
              info.file_bytes);
  if (info.format_version != 0) {
    std::printf("  format version %u, config fingerprint %016" PRIx64 "\n",
                info.format_version, info.fingerprint);
  }
  if (!info.kind.empty()) {
    std::printf("  %s session%s%s: %u instances, %" PRIu64
                " edges ingested over %" PRIu64 " vertices\n",
                info.kind.c_str(), info.label.empty() ? "" : " ",
                info.label.c_str(), info.num_instances, info.edges_ingested,
                info.num_vertices);
  }
  if (!info.sections.empty()) {
    std::printf("  %-20s %12s %10s %14s\n", "section", "bytes", "instance",
                "stored_edges");
    uint64_t total_stored = 0;
    for (const auto& section : info.sections) {
      char instance[24] = "-";
      char stored[24] = "-";
      if (section.instance >= 0) {
        std::snprintf(instance, sizeof(instance), "%" PRId64,
                      section.instance);
        std::snprintf(stored, sizeof(stored), "%" PRIu64,
                      section.stored_edges);
        total_stored += section.stored_edges;
      }
      std::printf("  %-20s %12" PRIu64 " %10s %14s\n",
                  SectionName(section.id), section.payload_bytes, instance,
                  stored);
    }
    std::printf("  total stored edges: %" PRIu64 "\n", total_stored);
  }
  if (!info.error.ok()) {
    std::printf("  INVALID: %s\n", info.error.ToString().c_str());
    return 1;
  }
  std::printf("  all CRCs verified\n");
  return 0;
}

// Demo mode: checkpoint a small REPT session so the no-argument run (and
// the ctest smoke entry) exercises the full save -> inspect path.
int DumpDemo() {
  const std::string path = "/tmp/rept_ckpt_dump_demo.ckpt";
  rept::ReptConfig config;
  config.m = 5;
  config.c = 13;  // c > m with a remainder group: pair registers included.
  const rept::ReptEstimator estimator(config);
  const std::unique_ptr<rept::StreamingEstimator> session =
      estimator.CreateSession(/*seed=*/42, /*pool=*/nullptr).value();
  rept::UniformRandomEdgeSource source(/*num_vertices=*/512,
                                       /*num_edges=*/20000, /*seed=*/7);
  const auto ingested = rept::IngestAll(source, *session, /*chunk_edges=*/4096);
  if (!ingested.ok()) {
    std::fprintf(stderr, "%s\n", ingested.status().ToString().c_str());
    return 2;
  }
  if (const rept::Status st = rept::SaveCheckpoint(*session, path);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::printf("no checkpoint given; wrote a demo checkpoint of %s\n\n",
              session->Name().c_str());
  return DumpOne(path);
}

}  // namespace

int main(int argc, char** argv) {
  rept::FlagSet flags(
      "print a checkpoint's header, sections, and per-instance stored-edge "
      "counts (no arguments: generate and dump a demo checkpoint)");
  if (const rept::Status st = flags.Parse(argc, argv); !st.ok()) {
    if (st.code() == rept::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (flags.positional().empty()) return DumpDemo();
  int rc = 0;
  for (const std::string& path : flags.positional()) {
    if (DumpOne(path) != 0) rc = 1;
    std::printf("\n");
  }
  return rc;
}
