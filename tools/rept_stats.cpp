// rept_stats: operator console for a running rept_server. Polls the METRICS
// and STATS verbs on an interval and renders a live table of server-wide
// counters plus one row per session (stream time, stored edges, memory,
// stage-1/stage-2 task seconds), so an operator can watch ingest throughput
// and budget pressure without attaching a Prometheus stack.
//
//   rept_stats --host 127.0.0.1 --port 7700 --interval-ms 1000
//
// --count N stops after N polls (0 = until the connection drops); --raw
// dumps the Prometheus text verbatim instead of the table.
//
// --smoke runs an in-process server, ingests two batches, polls METRICS
// twice, and exits nonzero unless the exposition parses and the ingest
// counters advance monotonically — the ctest smoke entry.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"

namespace {

/// One METRICS counter worth surfacing in the table header, by wire name.
struct HeaderMetric {
  const char* name;
  const char* label;
};

constexpr HeaderMetric kHeaderMetrics[] = {
    {"rept_server_frames_total", "frames"},
    {"rept_server_ingest_edges_total", "edges"},
    {"rept_server_ingest_bytes_total", "ingest_bytes"},
    {"rept_server_error_frames_total", "errors"},
    {"rept_server_admission_rejections_total", "rejected"},
    {"rept_server_sessions_recovered_total", "recovered"},
    {"rept_server_autocheckpoint_saves_total", "ckpt_saves"},
    {"rept_server_autocheckpoint_failures_total", "ckpt_fails"},
    {"rept_server_idle_reaps_total", "idle_reaps"},
    {"rept_ingest_batches_deduped_total", "deduped"},
};

void RenderTable(const std::string& metrics_text,
                 const rept::net::ServerStats& stats) {
  std::printf("== rept_server");
  for (const HeaderMetric& metric : kHeaderMetrics) {
    double value = 0.0;
    if (rept::obs::FindPrometheusValue(metrics_text, metric.name, &value)) {
      std::printf("  %s=%.0f", metric.label, value);
    }
  }
  std::printf("  mem=%.1fMiB ==\n",
              static_cast<double>(stats.total_memory_bytes) / (1 << 20));
  if (stats.sessions.empty()) {
    std::printf("(no sessions)\n");
    return;
  }
  std::printf("%-20s %12s %12s %10s %10s %10s\n", "session", "edges",
              "stored", "mem_MiB", "route_s", "est_s");
  for (const auto& row : stats.sessions) {
    std::printf("%-20s %12llu %12llu %10.1f %10.3f %10.3f\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.edges_ingested),
                static_cast<unsigned long long>(row.stored_edges),
                static_cast<double>(row.memory_bytes) / (1 << 20),
                row.cumulative.route_seconds,
                row.cumulative.estimate_seconds);
  }
}

/// In-process METRICS round-trip check: the exposition must parse and the
/// ingest counters must advance between two polls separated by an ingest.
int RunSmoke() {
  using rept::net::ReptClient;
  using rept::net::ReptServer;

  rept::net::ServerOptions options;
  options.port = 0;
  ReptServer server(std::move(options));
  rept::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "smoke: start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  rept::gen::HolmeKimParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 4;
  const rept::EdgeStream stream = rept::gen::HolmeKim(params, /*seed=*/11);
  const std::span<const rept::Edge> edges(stream.edges());
  const size_t half = edges.size() / 2;

  rept::net::SessionSpec spec;
  spec.name = "stats_smoke";
  spec.seed = 3;
  spec.config.m = 4;
  spec.config.c = 9;

  ReptClient client;
  st = client.Connect("127.0.0.1", server.port());
  if (st.ok()) st = client.CreateSession(spec);
  if (st.ok()) {
    st = client.Ingest(spec.name, edges.subspan(0, half),
                       stream.num_vertices())
             .status();
  }
  auto first = client.Metrics();
  if (st.ok()) st = first.status();
  if (st.ok()) st = client.Ingest(spec.name, edges.subspan(half)).status();
  auto second = client.Metrics();
  if (st.ok()) st = second.status();
  auto stats = client.Stats();
  if (st.ok()) st = stats.status();
  if (!st.ok()) {
    std::fprintf(stderr, "smoke: exchange failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // Every header metric plus the per-session gauge must parse from the
  // second poll, and the monotone counters must have advanced.
  const struct {
    const char* name;
    bool monotone;
  } checks[] = {
  // Registry-backed counters exist only when the obs layer is compiled in;
  // the per-session gauges below are synthesized at scrape time from the
  // session registry and survive REPT_OBS=OFF.
#ifndef REPT_OBS_DISABLED
      {"rept_server_frames_total", true},
      {"rept_server_ingest_frames_total", true},
      {"rept_server_ingest_edges_total", true},
      {"rept_server_sessions_created_total", false},
      {"rept_server_sessions_recovered_total", false},
      {"rept_server_autocheckpoint_saves_total", false},
      {"rept_server_idle_reaps_total", false},
      {"rept_ingest_batches_deduped_total", false},
#endif
      {"rept_session_edges_ingested{session=\"stats_smoke\"}", true},
  };
  for (const auto& check : checks) {
    double before = 0.0;
    double after = 0.0;
    if (!rept::obs::FindPrometheusValue(second.value(), check.name,
                                        &after)) {
      std::fprintf(stderr, "smoke: '%s' missing from METRICS\n", check.name);
      return 1;
    }
    if (check.monotone &&
        rept::obs::FindPrometheusValue(first.value(), check.name, &before) &&
        after <= before) {
      std::fprintf(stderr, "smoke: '%s' did not advance (%f -> %f)\n",
                   check.name, before, after);
      return 1;
    }
  }
  const auto reply = stats.value();
  if (reply.sessions.size() != 1 ||
      reply.sessions[0].cumulative.batches < 2 ||
      reply.sessions[0].last_batch.batches != 1) {
    std::fprintf(stderr, "smoke: STATS ingest blocks look wrong\n");
    return 1;
  }
  RenderTable(second.value(), reply);
  st = client.Shutdown();
  const rept::Status stop = server.Stop();
  if (!st.ok() || !stop.ok()) {
    std::fprintf(stderr, "smoke: shutdown failed\n");
    return 1;
  }
  std::printf("smoke: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 7700;
  uint64_t interval_ms = 1000;
  uint64_t count = 0;
  bool raw = false;
  bool smoke = false;

  rept::FlagSet flags(
      "rept_stats: poll a rept_server's METRICS/STATS verbs and render a "
      "live table of server and per-session counters.");
  flags.AddString("host", &host, "server address")
      .AddUint64("port", &port, "server port")
      .AddUint64("interval-ms", &interval_ms, "poll interval")
      .AddUint64("count", &count, "polls before exiting (0 = forever)")
      .AddBool("raw", &raw, "dump Prometheus text instead of the table")
      .AddBool("smoke", &smoke,
               "run an in-process METRICS self-check and exit");
  const rept::Status parsed = flags.Parse(argc, argv);
  if (parsed.code() == rept::StatusCode::kNotFound) return 0;  // --help
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  if (smoke) return RunSmoke();

  rept::net::ReptClient client;
  const rept::Status connected =
      client.Connect(host, static_cast<uint16_t>(port));
  if (!connected.ok()) {
    std::fprintf(stderr, "rept_stats: %s\n", connected.ToString().c_str());
    return 1;
  }
  for (uint64_t i = 0; count == 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const auto metrics = client.Metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "rept_stats: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    if (raw) {
      std::fputs(metrics.value().c_str(), stdout);
    } else {
      const auto stats = client.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "rept_stats: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      RenderTable(metrics.value(), stats.value());
    }
    std::fflush(stdout);
  }
  return 0;
}
