// rept_server: the network ingest daemon. Multiplexes many named streaming
// estimator sessions over the framed binary protocol (src/net) on one
// shared thread pool, with admission control and checkpoint-on-shutdown.
//
//   rept_server --port 7700 --checkpoint-dir /var/lib/rept
//
// With --checkpoint-dir, startup recovers every <name>.ckpt in the
// directory back into a live session (reaping orphaned .ckpt.tmp files
// first), --checkpoint-every-secs re-saves mutated sessions in the
// background so a kill -9 loses at most one interval, and SIGINT/SIGTERM
// initiate a graceful drain: the listener closes, in-flight requests
// finish, and every session is saved to <checkpoint-dir>/<name>.ckpt via
// the atomic tmp+rename SaveCheckpoint. --idle-timeout-secs contains
// stalled peers: a connection that neither completes a request nor drains
// its replies within the window is reaped without affecting others.
//
// --smoke runs an in-process server + client self-exchange (create, ingest,
// snapshot, checkpoint, restore, stats, shutdown verb) and exits nonzero on
// any mismatch — the ctest smoke entry, and a quick install check.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// In-process end-to-end exchange; returns 0 only if every step succeeds
/// and the served estimates are bit-identical to a direct library session.
int RunSmoke(rept::net::ServerOptions options) {
  using rept::net::ReptClient;
  using rept::net::ReptServer;

  options.port = 0;  // Ephemeral.
  ReptServer server(std::move(options));
  rept::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "smoke: start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("smoke: server on 127.0.0.1:%u\n", server.port());

  rept::gen::HolmeKimParams params;
  params.num_vertices = 500;
  params.edges_per_vertex = 4;
  params.triad_probability = 0.5;
  const rept::EdgeStream stream = rept::gen::HolmeKim(params, /*seed=*/7);

  rept::net::SessionSpec spec;
  spec.name = "smoke";
  spec.seed = 42;
  spec.config.m = 5;
  spec.config.c = 13;

  ReptClient client;
  st = client.Connect("127.0.0.1", server.port());
  if (st.ok()) st = client.CreateSession(spec);
  if (st.ok()) {
    st = client
             .Ingest(spec.name, std::span<const rept::Edge>(stream.edges()),
                     stream.num_vertices())
             .status();
  }
  auto snapshot = client.Snapshot(spec.name, /*top_k=*/5);
  if (st.ok()) st = snapshot.status();
  auto checkpoint = client.Checkpoint(spec.name);
  if (st.ok()) st = checkpoint.status();
  if (st.ok()) {
    st = client.Restore(spec.name,
                        std::span<const uint8_t>(checkpoint.value()));
  }
  auto stats = client.Stats();
  if (st.ok()) st = stats.status();
  if (st.ok()) st = client.Shutdown();
  if (!st.ok()) {
    std::fprintf(stderr, "smoke: exchange failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // Reference: the identical stream through the library directly.
  const auto reference = rept::ReptEstimator(spec.config)
                             .CreateSession(spec.seed, nullptr)
                             .value();
  reference->Ingest(stream);
  const rept::TriangleEstimates expected = reference->Snapshot();
  if (snapshot.value().global != expected.global) {
    std::fprintf(stderr, "smoke: served global %f != library %f\n",
                 snapshot.value().global, expected.global);
    return 1;
  }
  const rept::Status stop = server.Stop();
  if (!stop.ok()) {
    std::fprintf(stderr, "smoke: stop failed: %s\n",
                 stop.ToString().c_str());
    return 1;
  }
  std::printf(
      "smoke: ok (global=%.2f, %zu top vertices, %zu stats rows)\n",
      snapshot.value().global, snapshot.value().top.size(),
      stats.value().sessions.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 7700;
  uint64_t threads = 0;
  uint64_t max_sessions = 64;
  uint64_t session_budget_mb = 64;
  uint64_t global_budget_mb = 512;
  uint64_t max_frame_mb = 64;
  std::string checkpoint_dir;
  uint64_t checkpoint_every_secs = 0;
  uint64_t idle_timeout_secs = 0;
  bool smoke = false;

  rept::FlagSet flags(
      "rept_server: network ingest server multiplexing streaming "
      "triangle-estimation sessions over a framed binary protocol.");
  flags.AddString("host", &host, "listen address")
      .AddUint64("port", &port, "listen port (0 = ephemeral)")
      .AddUint64("threads", &threads,
                 "shared ingest pool size (0 = hardware)")
      .AddUint64("max-sessions", &max_sessions,
                 "concurrent session limit (0 = unlimited)")
      .AddUint64("session-budget-mb", &session_budget_mb,
                 "default per-session memory budget in MiB (0 = unlimited)")
      .AddUint64("global-budget-mb", &global_budget_mb,
                 "total memory budget across sessions in MiB "
                 "(0 = unlimited)")
      .AddUint64("max-frame-mb", &max_frame_mb,
                 "per-frame payload cap in MiB")
      .AddString("checkpoint-dir", &checkpoint_dir,
                 "directory for checkpoints; restored on startup, saved on "
                 "shutdown (empty = disabled)")
      .AddUint64("checkpoint-every-secs", &checkpoint_every_secs,
                 "auto-checkpoint dirty sessions this often; needs "
                 "--checkpoint-dir (0 = shutdown-only)")
      .AddUint64("idle-timeout-secs", &idle_timeout_secs,
                 "reap connections idle or stalled this long "
                 "(0 = wait forever)")
      .AddBool("smoke", &smoke,
               "run an in-process client self-exchange and exit");
  const rept::Status parsed = flags.Parse(argc, argv);
  if (parsed.code() == rept::StatusCode::kNotFound) return 0;  // --help
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  rept::net::ServerOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.pool_threads = static_cast<size_t>(threads);
  options.limits.max_sessions = static_cast<uint32_t>(max_sessions);
  options.limits.default_session_memory_budget = session_budget_mb << 20;
  options.limits.global_memory_budget = global_budget_mb << 20;
  options.max_frame_payload = max_frame_mb << 20;
  options.checkpoint_dir = checkpoint_dir;
  options.checkpoint_every_ms = checkpoint_every_secs * 1000;
  options.idle_timeout_ms = idle_timeout_secs * 1000;
  if (checkpoint_every_secs != 0 && checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "rept_server: --checkpoint-every-secs needs "
                 "--checkpoint-dir\n");
    return 2;
  }

  if (smoke) return RunSmoke(std::move(options));

  InstallSignalHandlers();
  rept::net::ReptServer server(std::move(options));
  const rept::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "rept_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("rept_server: listening on %s:%u (pool=%zu, sessions<=%u)\n",
              host.c_str(), server.port(), server.pool()->num_threads(),
              server.registry()->limits().max_sessions);
  if (!checkpoint_dir.empty()) {
    std::printf("rept_server: recovered %llu session(s); checkpointing to "
                "%s/<name>.ckpt (%s)\n",
                static_cast<unsigned long long>(server.sessions_recovered()),
                checkpoint_dir.c_str(),
                checkpoint_every_secs != 0 ? "periodic + shutdown"
                                           : "shutdown only");
  }
  std::fflush(stdout);

  // Serve until a signal or the SHUTDOWN verb flips the flag.
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (g_signal != 0) {
    std::printf("rept_server: signal %d, draining\n",
                static_cast<int>(g_signal));
  }
  const rept::Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "rept_server: shutdown checkpoint failed: %s\n",
                 stopped.ToString().c_str());
    return 1;
  }
  std::printf("rept_server: drained after %llu connection(s), %llu "
              "frame(s)\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_served()));
  return 0;
}
