#!/usr/bin/env python3
"""Gate the observability layer's ingest overhead at a fixed percentage.

Runs bench_ingest_throughput --smoke from two build trees -- the default
build (REPT_OBS=ON) and a -DREPT_OBS=OFF build where every counter and span
compiles to nothing -- several times each, takes the best routed throughput
per side (best-of damps scheduler noise; the *fastest* run of each binary is
the closest to its true cost), and fails when the instrumented build is more
than --tolerance slower.

    tools/check_obs_overhead.py \
        --obs-bin build/bench/bench_ingest_throughput \
        --noobs-bin build-noobs/bench/bench_ingest_throughput

Stdlib only; exit 0 = within tolerance, 1 = overhead too high, 2 = a bench
run failed.
"""

import argparse
import json
import subprocess
import sys
import tempfile
import os


def best_routed_throughput(bench_bin: str, runs: int) -> float:
    """Best routed-dispatch edges/sec across `runs` invocations."""
    best = 0.0
    for i in range(runs):
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as tmp:
            out_path = tmp.name
        try:
            proc = subprocess.run(
                [bench_bin, "--smoke", "--out", out_path],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
            if proc.returncode != 0:
                sys.stderr.write(proc.stdout.decode(errors="replace"))
                sys.stderr.write(
                    f"error: {bench_bin} run {i + 1}/{runs} exited "
                    f"{proc.returncode}\n"
                )
                sys.exit(2)
            with open(out_path) as f:
                doc = json.load(f)
        finally:
            os.unlink(out_path)
        for result in doc.get("results", []):
            if result.get("dispatch") == "routed":
                best = max(best, float(result.get("edges_per_sec", 0.0)))
    if best <= 0.0:
        sys.stderr.write(f"error: no routed rows in {bench_bin} output\n")
        sys.exit(2)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--obs-bin", required=True,
                        help="bench_ingest_throughput from the REPT_OBS=ON "
                             "build")
    parser.add_argument("--noobs-bin", required=True,
                        help="bench_ingest_throughput from the "
                             "-DREPT_OBS=OFF build")
    parser.add_argument("--runs", type=int, default=3,
                        help="invocations per side (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="allowed slowdown fraction (0.03 = 3%%)")
    args = parser.parse_args()

    on = best_routed_throughput(args.obs_bin, args.runs)
    off = best_routed_throughput(args.noobs_bin, args.runs)
    ratio = on / off
    verdict = "OK" if ratio >= 1.0 - args.tolerance else "FAIL"
    print(
        f"obs overhead gate: obs-on {on:.3g} e/s, obs-off {off:.3g} e/s, "
        f"ratio {ratio:.4f} (floor {1.0 - args.tolerance:.4f}) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
