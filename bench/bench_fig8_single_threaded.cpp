// Figure 8 reproduction (Flickr): REPT vs budget-matched *single-threaded*
// baselines MASCOT-S / TRIEST-S / GPS-S.
//
//   (a) runtime vs c at 1/p = 10      (b) runtime vs c at 1/p = 100
//   (c) error   vs c at 1/p = 10      (d) error   vs c at 1/p = 100
//
// The single-threaded variants get the same total memory (sampling
// probability c*p, budget c*p*|E|; GPS-S half) but run on one logical
// processor, so REPT should be up to ~c times faster at comparable error.
#include <cinttypes>

#include "baselines/baseline_systems.hpp"
#include "bench_common.hpp"
#include "runner/evaluation.hpp"
#include "runner/runtime_measure.hpp"

namespace rept::bench {
namespace {

void RunPanel(const BenchContext& ctx, const Dataset& d, uint32_t m,
              const std::vector<uint32_t>& c_values, uint64_t repeats) {
  std::printf("--- 1/p = %u ---\n", m);
  TablePrinter table({"c", "t_REPT", "t_MASCOT-S", "t_TRIEST-S", "t_GPS-S",
                      "e_REPT", "e_MASCOT-S", "e_TRIEST-S", "e_GPS-S"});
  for (uint32_t c : c_values) {
    const auto rept = MakeRept(m, c, false);
    const auto mascot_s = MakeMascotS(m, c, false);
    const auto triest_s = MakeTriestS(m, c, false);
    const auto gps_s = MakeGpsS(m, c, false);

    // Runtime: REPT uses the pool (c logical processors in parallel), the
    // single-threaded baselines by definition run on one thread.
    const auto reps = static_cast<uint32_t>(repeats);
    const double t_rept =
        MeasureRuntime(*rept, d.stream, ctx.seed, ctx.pool.get(), reps)
            .median_seconds;
    const double t_mascot =
        MeasureRuntime(*mascot_s, d.stream, ctx.seed, nullptr, reps)
            .median_seconds;
    const double t_triest =
        MeasureRuntime(*triest_s, d.stream, ctx.seed, nullptr, reps)
            .median_seconds;
    const double t_gps =
        MeasureRuntime(*gps_s, d.stream, ctx.seed, nullptr, reps)
            .median_seconds;

    EvaluationOptions opts;
    opts.runs = static_cast<uint32_t>(ctx.runs);
    opts.master_seed = ctx.seed;
    opts.evaluate_local = false;
    const double e_rept =
        EvaluateSystem(*rept, d.stream, d.exact, opts, ctx.pool.get())
            .global_nrmse;
    const double e_mascot =
        EvaluateSystem(*mascot_s, d.stream, d.exact, opts, ctx.pool.get())
            .global_nrmse;
    const double e_triest =
        EvaluateSystem(*triest_s, d.stream, d.exact, opts, ctx.pool.get())
            .global_nrmse;
    const double e_gps =
        EvaluateSystem(*gps_s, d.stream, d.exact, opts, ctx.pool.get())
            .global_nrmse;

    table.AddRow({std::to_string(c), Fmt(t_rept, 3), Fmt(t_mascot, 3),
                  Fmt(t_triest, 3), Fmt(t_gps, 3), Fmt(e_rept, 3),
                  Fmt(e_mascot, 3), Fmt(e_triest, 3), Fmt(e_gps, 3)});
  }
  table.Print();
  std::printf("\n");
}

int Main(int argc, char** argv) {
  CommonFlags common;
  common.datasets = "flickr-sim";  // the figure is Flickr-only in the paper
  common.size = "default";  // runtime shape needs intersection-dominated work
  uint64_t repeats = 3;
  FlagSet flags(
      "Figure 8: REPT vs single-threaded MASCOT-S/TRIEST-S/GPS-S (Flickr)");
  common.Register(flags);
  flags.AddUint64("repeats", &repeats, "timed repetitions (median)");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Figure 8: runtime and error vs c (single-threaded "
              "baselines) ===\n\n");
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    std::printf("dataset %s: |E|=%" PRIu64 ", tau=%" PRIu64 "\n\n",
                name.c_str(), d.stream.size(), d.exact.tau);
    // (a)/(c): 1/p = 10; MASCOT-S needs c*p <= 1, so c <= 10.
    RunPanel(ctx, d, 10, {2, 4, 8, 10}, repeats);
    // (b)/(d): 1/p = 100.
    RunPanel(ctx, d, 100, {8, 16, 32}, repeats);
  }
  std::printf(
      "paper: at 1/p=100, c=32 REPT is 25x/50x/100x faster than MASCOT-S/"
      "TRIEST-S/GPS-S with comparable (slightly higher) error\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
