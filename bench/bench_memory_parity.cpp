// Memory accounting behind Figures 3-8: the paper compares the methods "at
// the same memory" — REPT and MASCOT store ~p|E| edges per processor,
// TRIEST exactly p|E|, GPS p|E|/2 because each sampled edge also carries a
// weight and a rank. This bench measures stored-edge counts and heap bytes
// per logical processor so the equal-memory premise of the accuracy figures
// is auditable.
#include <cinttypes>

#include "baselines/gps.hpp"
#include "baselines/mascot.hpp"
#include "baselines/triest.hpp"
#include "bench_common.hpp"
#include "core/rept_instance.hpp"
#include "hash/edge_hash.hpp"
#include "util/random.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  uint64_t m = 10;
  FlagSet flags("memory per logical processor at p = 1/m");
  common.Register(flags);
  flags.AddUint64("m", &m, "sampling denominator");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Memory parity: stored edges per processor, p = 1/%" PRIu64
              " ===\n\n",
              m);
  TablePrinter table({"dataset", "p*|E|", "REPT", "MASCOT", "TRIEST",
                      "GPS(half)", "REPT bytes", "MASCOT bytes"});
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    const double target = static_cast<double>(d.stream.size()) /
                          static_cast<double>(m);

    SemiTriangleCounter::Options opts;
    opts.track_local = false;
    ReptInstance rept(MixEdgeHasher(ctx.seed), static_cast<uint32_t>(m),
                      /*bucket=*/0, opts);
    MascotCounter mascot(1.0 / static_cast<double>(m), ctx.seed, false);
    TriestCounter triest(
        std::max<uint64_t>(6, d.stream.size() / m), ctx.seed,
        TriestVariant::kImpr, false);
    GpsCounter gps(std::max<uint64_t>(2, d.stream.size() / (2 * m)),
                   ctx.seed, 9.0, false);
    for (const Edge& e : d.stream) {
      rept.ProcessEdge(e.u, e.v);
      mascot.ProcessEdge(e.u, e.v);
      triest.ProcessEdge(e.u, e.v);
      gps.ProcessEdge(e.u, e.v);
    }

    table.AddRow(
        {name, Fmt(target, 5),
         std::to_string(rept.counter().stored_edges()),
         std::to_string(mascot.StoredEdges()),
         std::to_string(triest.StoredEdges()),
         std::to_string(gps.StoredEdges()),
         std::to_string(rept.counter().sample().MemoryBytes()),
         std::to_string(mascot.counter().sample().MemoryBytes())});
  }
  table.Print();
  std::printf(
      "\nexpected: REPT and MASCOT concentrate around p|E| (binomial /"
      " balls-in-bins), TRIEST pins exactly p|E|, GPS stores half "
      "(weights+ranks double its per-edge cost)\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
