// Multi-connection load generator for rept_server: starts an in-process
// server, then sweeps (client connections x sessions) while streaming
// generated graphs over real TCP, and reports end-to-end ingest throughput
// in the standardized BENCH_server.json schema.
//
// Sweep points: dedicated sessions (each connection owns one session, the
// scaling case admission control is built for) plus one shared-session
// point (4 connections interleaving batches into a single session, which
// serializes on the session's ingest mutex — the expected-contention
// comparison).
//
//   build/bench/bench_server_load                  # full sweep
//   build/bench/bench_server_load --reconnect      # + fault-tolerant mode
//   build/bench/bench_server_load --smoke          # CI loopback gate
//
// --reconnect adds sweep points where every worker runs the fault-tolerant
// client mode (auto-reconnect armed, INGEST frames sequenced for
// exactly-once dedup) — the overhead of the durability machinery measured
// against the plain points on the same streams.
//
// --smoke shrinks the load and turns the run into a pass/fail check:
// every dedicated session's served estimate must be bit-identical to a
// direct library ingest of the same (stream, seed), and multi-connection
// throughput must not collapse below 20% of single-connection throughput.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "gen/holme_kim.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/timer.hpp"

namespace {

using rept::bench::BenchJsonWriter;

struct SweepPoint {
  size_t connections;
  size_t sessions;
  /// Workers arm the auto-reconnect policy and attach to their session, so
  /// every INGEST frame carries an exactly-once sequence number — the
  /// fault-tolerant client mode. Measures the sequencing + dedup-tracking
  /// overhead against the plain points. Dedicated sessions only (sequenced
  /// ingest assumes one writer per session).
  bool reconnect = false;
  /// Sessions are assigned round-robin; connections > sessions means
  /// several connections interleave batches into one session.
  bool shared() const { return connections > sessions; }
  std::string Label() const {
    return "conn" + std::to_string(connections) + "_sess" +
           std::to_string(sessions) + (shared() ? "_shared" : "") +
           (reconnect ? "_reconnect" : "");
  }
};

rept::EdgeStream MakeLoadStream(uint64_t edges_target, uint64_t seed) {
  rept::gen::HolmeKimParams params;
  params.num_vertices =
      static_cast<rept::VertexId>(std::max<uint64_t>(64, edges_target / 4));
  params.edges_per_vertex = 4;
  params.triad_probability = 0.4;
  return rept::gen::HolmeKim(params, seed);
}

struct PointResult {
  double seconds = 0.0;
  uint64_t edges = 0;
  bool estimates_ok = true;
  double edges_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(edges) / seconds : 0.0;
  }
};

/// Runs one sweep point against `server`. Sessions are created fresh and
/// dropped afterwards so points don't see each other's state.
PointResult RunPoint(rept::net::ReptServer& server, const SweepPoint& point,
                     const std::vector<rept::EdgeStream>& streams,
                     const std::vector<double>& expected_globals,
                     size_t batch_edges) {
  const uint16_t port = server.port();
  rept::ReptConfig config;
  config.m = 8;
  config.c = 8;
  config.track_local = false;

  // Admin connection: session setup/teardown and verification.
  rept::net::ReptClient admin;
  if (!admin.Connect("127.0.0.1", port).ok()) return {};
  std::vector<std::string> names;
  for (size_t s = 0; s < point.sessions; ++s) {
    rept::net::SessionSpec spec;
    spec.name = point.Label() + "_s" + std::to_string(s);
    spec.seed = 1000 + s;
    spec.config = config;
    spec.options.expected_edges = streams[s].size();
    spec.options.expected_vertices = streams[s].num_vertices();
    if (!admin.CreateSession(spec).ok()) return {};
    names.push_back(spec.name);
  }

  // Each connection streams its share; for shared sessions the share is a
  // disjoint slice of the session's stream.
  PointResult result;
  std::vector<std::thread> workers;
  // Bytes, not vector<bool>: each worker writes its own slot concurrently.
  std::vector<uint8_t> worker_ok(point.connections, 0);
  rept::WallTimer timer;
  for (size_t w = 0; w < point.connections; ++w) {
    workers.emplace_back([&, w] {
      const size_t session = w % point.sessions;
      const rept::EdgeStream& stream = streams[session];
      const size_t sharers =
          point.connections / point.sessions +
          (session < point.connections % point.sessions ? 1 : 0);
      const size_t share = w / point.sessions;
      const size_t begin = stream.size() * share / sharers;
      const size_t end = stream.size() * (share + 1) / sharers;

      rept::net::ReptClient client;
      if (point.reconnect) {
        rept::net::ReconnectPolicy policy;
        policy.enabled = true;
        policy.jitter_seed = 0xb5eed + w;
        client.set_reconnect_policy(policy);
      }
      if (!client.Connect("127.0.0.1", port).ok()) return;
      if (point.reconnect) {
        // Attach registers the session for sequenced (exactly-once) ingest
        // and replay-on-reconnect.
        rept::net::SessionSpec spec;
        spec.name = names[session];
        spec.seed = 1000 + session;
        spec.config = config;
        if (!client.CreateSession(spec, nullptr, /*attach=*/true).ok()) {
          return;
        }
      }
      const std::span<const rept::Edge> edges(
          stream.edges().data() + begin, end - begin);
      for (size_t i = 0; i < edges.size(); i += batch_edges) {
        const size_t n = std::min(batch_edges, edges.size() - i);
        if (!client
                 .Ingest(names[session], edges.subspan(i, n),
                         i == 0 ? stream.num_vertices() : 0)
                 .ok()) {
          return;
        }
      }
      worker_ok[w] = 1;
    });
  }
  for (std::thread& t : workers) t.join();
  result.seconds = timer.Seconds();
  for (size_t s = 0; s < point.sessions; ++s) result.edges += streams[s].size();
  for (const uint8_t ok : worker_ok) {
    if (ok == 0) result.estimates_ok = false;
  }

  // Dedicated sessions saw their stream in order: the served estimate must
  // be bit-identical to the library. Shared sessions interleave batches
  // (a different but valid edge order), so only the accounting is checked.
  for (size_t s = 0; s < point.sessions && result.estimates_ok; ++s) {
    auto snapshot = admin.Snapshot(names[s], 0);
    if (!snapshot.ok() ||
        snapshot.value().edges_ingested != streams[s].size()) {
      result.estimates_ok = false;
      break;
    }
    if (!point.shared() &&
        snapshot.value().global != expected_globals[s]) {
      std::fprintf(stderr, "%s session %zu: served %.6f != library %.6f\n",
                   point.Label().c_str(), s, snapshot.value().global,
                   expected_globals[s]);
      result.estimates_ok = false;
    }
  }
  for (const std::string& name : names) (void)admin.DropSession(name);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t edges_per_session = 200000;
  uint64_t batch = 8192;
  uint64_t threads = 0;
  uint64_t seed = 42;
  bool smoke = false;
  bool reconnect = false;
  std::string out_json = "BENCH_server.json";
  rept::FlagSet flags(
      "rept_server load generator: connections x sessions throughput sweep "
      "over loopback TCP");
  flags.AddUint64("edges", &edges_per_session, "edges per session")
      .AddUint64("batch", &batch, "edges per INGEST frame")
      .AddUint64("threads", &threads, "server pool threads (0 = hardware)")
      .AddUint64("seed", &seed, "stream seed base")
      .AddBool("smoke", &smoke,
               "small load + hard pass/fail on estimates and scaling")
      .AddBool("reconnect", &reconnect,
               "add sweep points with the fault-tolerant client mode "
               "(sequenced exactly-once ingest) to measure its overhead")
      .AddString("out", &out_json, "output JSON path");
  rept::bench::ParseOrDie(flags, argc, argv);
  if (smoke) edges_per_session = std::min<uint64_t>(edges_per_session, 20000);

  rept::net::ServerOptions options;
  options.pool_threads = static_cast<size_t>(threads);
  options.limits.max_sessions = 16;
  rept::net::ReptServer server(options);
  if (const rept::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<SweepPoint> points = {{1, 1}, {2, 2}, {4, 4}, {4, 1}};
  if (reconnect) {
    points.push_back({1, 1, /*reconnect=*/true});
    points.push_back({4, 4, /*reconnect=*/true});
  }
  const size_t max_sessions = 4;

  // Streams and library references are per session index (same seed at
  // every sweep point, so references are computed once).
  std::vector<rept::EdgeStream> streams;
  std::vector<double> expected_globals;
  rept::ReptConfig config;
  config.m = 8;
  config.c = 8;
  config.track_local = false;
  for (size_t s = 0; s < max_sessions; ++s) {
    streams.push_back(MakeLoadStream(edges_per_session, seed + s));
    const auto reference = rept::ReptEstimator(config)
                               .CreateSession(1000 + s, nullptr)
                               .value();
    reference->Ingest(streams.back());
    expected_globals.push_back(reference->Snapshot().global);
  }

  BenchJsonWriter json("server");
  json.Meta("edges_per_session", BenchJsonWriter::NumU(edges_per_session));
  json.Meta("batch", BenchJsonWriter::NumU(batch));
  json.Meta("smoke", smoke ? "true" : "false");
  json.Meta("reconnect_points", reconnect ? "true" : "false");

  std::printf("%-18s %12s %10s %14s %10s\n", "point", "edges", "seconds",
              "edges/sec", "verified");
  std::map<std::string, double> throughput;
  bool all_ok = true;
  for (const SweepPoint& point : points) {
    const PointResult result = RunPoint(server, point, streams,
                                        expected_globals,
                                        static_cast<size_t>(batch));
    all_ok = all_ok && result.estimates_ok;
    throughput[point.Label()] = result.edges_per_sec();
    std::printf("%-18s %12llu %10.3f %14.0f %10s\n", point.Label().c_str(),
                static_cast<unsigned long long>(result.edges),
                result.seconds, result.edges_per_sec(),
                result.estimates_ok ? "yes" : "NO");
    json.Result(point.Label(), "holme-kim",
                server.pool()->num_threads(), result.edges_per_sec(),
                {{"connections", BenchJsonWriter::NumU(point.connections)},
                 {"sessions", BenchJsonWriter::NumU(point.sessions)},
                 {"shared_session", point.shared() ? "true" : "false"},
                 {"reconnect", point.reconnect ? "true" : "false"},
                 {"edges", BenchJsonWriter::NumU(result.edges)},
                 {"verified", result.estimates_ok ? "true" : "false"}});
  }
  (void)server.Stop();
  if (!json.WriteTo(out_json)) return 1;

  if (!all_ok) {
    std::fprintf(stderr, "FAILED: served estimates diverged from the "
                 "library\n");
    return 1;
  }
  if (smoke) {
    // Multi-connection throughput must not collapse: 4 dedicated
    // connections at >= 20% of one connection (loose enough for 1-core CI
    // runners, tight enough to catch a serialization regression).
    const double single = throughput["conn1_sess1"];
    const double quad = throughput["conn4_sess4"];
    if (single > 0.0 && quad < 0.2 * single) {
      std::fprintf(stderr,
                   "FAILED: throughput collapse: conn4_sess4 %.0f < 20%% "
                   "of conn1_sess1 %.0f\n",
                   quad, single);
      return 1;
    }
    std::printf("smoke: ok\n");
  }
  return 0;
}
