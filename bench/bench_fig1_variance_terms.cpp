// Figure 1 reproduction: the variance decomposition that motivates REPT.
//
// (a)   tau vs eta per dataset (paper: eta is 11x-3900x larger than tau)
// (b-d) tau(p^-2 - 1) vs 2 eta(p^-1 - 1) for p = 0.1, 0.05, 0.01
//       (paper: the covariance term dominates, by up to 355x at p=0.1)
#include "bench_common.hpp"
#include "core/variance.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  FlagSet flags("Figure 1: tau vs eta and MASCOT variance terms");
  common.Register(flags);
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Figure 1(a): tau vs eta ===\n");
  TablePrinter fig1a({"dataset", "tau", "eta", "eta/tau"});
  std::vector<Dataset> datasets;
  datasets.reserve(ctx.dataset_names.size());
  for (const std::string& name : ctx.dataset_names) {
    datasets.push_back(LoadDataset(ctx, name));
    const Dataset& d = datasets.back();
    fig1a.AddRow({name, Sci(static_cast<double>(d.exact.tau)),
                  Sci(static_cast<double>(d.exact.eta)),
                  Fmt(static_cast<double>(d.exact.eta) /
                          static_cast<double>(d.exact.tau),
                      3)});
  }
  fig1a.Print();
  std::printf("paper: eta/tau between ~11x and ~3900x across the suite\n\n");

  const double probabilities[] = {0.1, 0.05, 0.01};
  const char* panels[] = {"(b)", "(c)", "(d)"};
  for (int i = 0; i < 3; ++i) {
    const double p = probabilities[i];
    std::printf("=== Figure 1%s: variance terms at p = %g ===\n", panels[i],
                p);
    TablePrinter table(
        {"dataset", "tau(p^-2-1)", "2eta(p^-1-1)", "eta_term/tau_term"});
    for (size_t j = 0; j < datasets.size(); ++j) {
      const Dataset& d = datasets[j];
      const auto terms = variance::MascotTerms(
          static_cast<double>(d.exact.tau),
          static_cast<double>(d.exact.eta), p);
      table.AddRow({ctx.dataset_names[j], Sci(terms.tau_term),
                    Sci(terms.eta_term),
                    Fmt(terms.eta_term / terms.tau_term, 3)});
    }
    table.Print();
    if (p == 0.1) {
      std::printf("paper: covariance term 2x-355x larger at p=0.1\n");
    } else if (p == 0.01) {
      std::printf(
          "paper: still 2x-35x larger at p=0.01 on the pair-heavy graphs\n");
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
