// Checkpoint save/load throughput for the persist subsystem, emitted to
// BENCH_checkpoint.json (override with --out) so CI and EXPERIMENTS.md can
// track the durability path alongside ingest throughput.
//
// For each configured session (REPT global-only, REPT with local tallies,
// and a TRIEST ensemble) the bench ingests a generated stream, then times
// SaveCheckpoint (atomic tmp + rename, CRC framing included) and
// LoadCheckpoint (parse + verify + rebuild) over several repetitions,
// reporting file size and MB/s both ways plus a resume sanity check
// (restored snapshot must equal the saved one bit for bit).
//
//   build/bench/bench_checkpoint [--edges 2000000] [--m 20] [--c 32]
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_systems.hpp"
#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "core/streaming_estimator.hpp"
#include "graph/edge_source.hpp"
#include "persist/checkpoint.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

struct Measurement {
  std::string system;
  uint64_t stored_edges = 0;
  uint64_t file_bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  double save_mb_s = 0.0;
  double load_mb_s = 0.0;
  bool roundtrip_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_vertices = 100000;
  uint64_t num_edges = 2000000;
  uint64_t m = 20;
  uint64_t c = 32;
  uint64_t seed = 42;
  uint64_t reps = 5;
  uint64_t threads = 0;
  std::string out = "BENCH_checkpoint.json";
  std::string ckpt_path = "/tmp/rept_bench_checkpoint.ckpt";
  rept::FlagSet flags(
      "checkpoint save/load throughput (BENCH_checkpoint.json)");
  flags.AddUint64("vertices", &num_vertices, "vertex-id space of the stream");
  flags.AddUint64("edges", &num_edges, "stream length");
  flags.AddUint64("m", &m, "sampling denominator");
  flags.AddUint64("c", &c, "logical processors");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddUint64("reps", &reps, "save/load repetitions per row");
  flags.AddUint64("threads", &threads,
                  "ingest workers (0 = hardware concurrency)");
  flags.AddString("out", &out, "output JSON path");
  flags.AddString("ckpt", &ckpt_path, "scratch checkpoint file");
  rept::bench::ParseOrDie(flags, argc, argv);

  rept::ThreadPool pool(static_cast<size_t>(threads));
  rept::SessionOptions options;
  options.expected_edges = num_edges;
  options.expected_vertices = static_cast<rept::VertexId>(num_vertices);

  struct SystemCase {
    std::string label;
    std::unique_ptr<rept::EstimatorSystem> system;
  };
  std::vector<SystemCase> cases;
  cases.push_back({"REPT-global",
                   rept::MakeRept(static_cast<uint32_t>(m),
                                  static_cast<uint32_t>(c),
                                  /*track_local=*/false)});
  cases.push_back({"REPT-local",
                   rept::MakeRept(static_cast<uint32_t>(m),
                                  static_cast<uint32_t>(c),
                                  /*track_local=*/true)});
  cases.push_back({"TRIEST",
                   rept::MakeParallelTriest(static_cast<uint32_t>(m),
                                            static_cast<uint32_t>(c))});

  std::vector<Measurement> results;
  for (const SystemCase& system_case : cases) {
    rept::UniformRandomEdgeSource source(
        static_cast<rept::VertexId>(num_vertices), num_edges, seed);
    const auto session =
        system_case.system->CreateSession(seed, &pool, options).value();
    const auto ingested = rept::IngestAll(source, *session);
    if (!ingested.ok()) {
      std::fprintf(stderr, "%s\n", ingested.status().ToString().c_str());
      return 2;
    }

    Measurement r;
    r.system = system_case.label;
    r.stored_edges = session->StoredEdges();
    for (uint64_t rep = 0; rep < reps; ++rep) {
      rept::WallTimer save_timer;
      if (const rept::Status st = rept::SaveCheckpoint(*session, ckpt_path);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      r.save_seconds += save_timer.Seconds();

      const auto restored =
          system_case.system->CreateSession(seed, &pool, options).value();
      rept::WallTimer load_timer;
      if (const rept::Status st =
              rept::LoadCheckpoint(*restored, ckpt_path);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      r.load_seconds += load_timer.Seconds();
      if (rep == 0) {
        r.roundtrip_ok =
            restored->Snapshot().global == session->Snapshot().global &&
            restored->StoredEdges() == session->StoredEdges();
      }
    }
    r.save_seconds /= static_cast<double>(reps);
    r.load_seconds /= static_cast<double>(reps);
    const rept::CheckpointInfo info = rept::InspectCheckpoint(ckpt_path);
    r.file_bytes = info.file_bytes;
    const double mb = static_cast<double>(r.file_bytes) / (1024.0 * 1024.0);
    r.save_mb_s = mb / r.save_seconds;
    r.load_mb_s = mb / r.load_seconds;
    results.push_back(r);
    std::remove(ckpt_path.c_str());
  }

  rept::TablePrinter table({"system", "stored_edges", "file_MB", "save_s",
                            "load_s", "save_MB/s", "load_MB/s", "roundtrip"});
  for (const Measurement& r : results) {
    table.AddRow({r.system, std::to_string(r.stored_edges),
                  rept::bench::Fmt(
                      static_cast<double>(r.file_bytes) / (1024.0 * 1024.0),
                      2),
                  rept::bench::Fmt(r.save_seconds, 4),
                  rept::bench::Fmt(r.load_seconds, 4),
                  rept::bench::Fmt(r.save_mb_s, 1),
                  rept::bench::Fmt(r.load_mb_s, 1),
                  r.roundtrip_ok ? "bit-identical" : "MISMATCH"});
  }
  table.Print();

  using rept::bench::BenchJsonWriter;
  BenchJsonWriter json("checkpoint");
  json.Meta("vertices", BenchJsonWriter::NumU(num_vertices));
  json.Meta("edges", BenchJsonWriter::NumU(num_edges));
  json.Meta("m", BenchJsonWriter::NumU(m));
  json.Meta("c", BenchJsonWriter::NumU(c));
  json.Meta("reps", BenchJsonWriter::NumU(reps));
  for (const Measurement& r : results) {
    // Primary throughput metric: stored edges serialized per second of
    // save time (the ingest-side cost of a periodic checkpoint policy).
    const double edges_per_sec =
        static_cast<double>(r.stored_edges) / r.save_seconds;
    json.Result(
        r.system, "uniform-random", /*threads=*/1, edges_per_sec,
        {{"stored_edges", BenchJsonWriter::NumU(r.stored_edges)},
         {"file_bytes", BenchJsonWriter::NumU(r.file_bytes)},
         {"save_seconds", BenchJsonWriter::Num(r.save_seconds)},
         {"load_seconds", BenchJsonWriter::Num(r.load_seconds)},
         {"save_mb_per_sec", BenchJsonWriter::Num(r.save_mb_s)},
         {"load_mb_per_sec", BenchJsonWriter::Num(r.load_mb_s)},
         {"roundtrip_bit_identical", r.roundtrip_ok ? "true" : "false"}});
  }
  if (!json.WriteTo(out)) return 2;
  const bool all_ok = [&results] {
    for (const Measurement& r : results) {
      if (!r.roundtrip_ok) return false;
    }
    return true;
  }();
  return all_ok ? 0 : 1;
}
