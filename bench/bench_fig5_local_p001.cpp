// Figure 5 reproduction: mean local triangle count NRMSE vs c at p = 0.01
// (m = 100); REPT vs parallel MASCOT / TRIEST (the paper omits GPS from the
// local figures).
#include "bench_accuracy_figure.hpp"

int main(int argc, char** argv) {
  rept::bench::AccuracyFigureSpec spec;
  spec.title = "Figure 5: local NRMSE vs c, p = 0.01";
  spec.m = 100;
  spec.c_values = {20, 80, 160, 320};
  spec.local = true;
  spec.include_gps = false;
  spec.paper_note =
      "REPT significantly below MASCOT/TRIEST on every dataset; error "
      "reduction grows with c";
  return rept::bench::RunAccuracyFigure(spec, argc, argv);
}
