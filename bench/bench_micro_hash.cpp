// Micro-benchmark: edge hashing throughput (the per-edge fixed cost every
// REPT processor pays on every stream edge).
#include <benchmark/benchmark.h>

#include "hash/edge_hash.hpp"
#include "hash/tabulation.hpp"

namespace rept {
namespace {

void BM_MixEdgeHasher(benchmark::State& state) {
  const MixEdgeHasher hasher(42);
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  VertexId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Bucket(u, u + 7, m));
    ++u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MixEdgeHasher)->Arg(10)->Arg(100);

void BM_TabulationEdgeHasher(benchmark::State& state) {
  const TabulationEdgeHasher hasher(42);
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  VertexId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Bucket(u, u + 7, m));
    ++u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TabulationEdgeHasher)->Arg(10)->Arg(100);

void BM_EdgeKey(benchmark::State& state) {
  VertexId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeKey(u, u + 3));
    ++u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdgeKey);

}  // namespace
}  // namespace rept
