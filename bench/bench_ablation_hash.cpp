// Ablation: hash family sensitivity. The default MixEdgeHasher is a strong
// 64-bit mixer without formal independence guarantees; TabulationEdgeHasher
// is provably 3-independent.
//
// Finding (see EXPERIMENTS.md): 3-independence is NOT enough for REPT.
// The variance proof treats pairs of edge-disjoint triangles as
// uncorrelated, an event over FOUR distinct edges, so it implicitly needs
// 4-wise independence — and simple tabulation is famously only
// 3-independent, with structured 4-key correlations. Empirically the
// tabulation-backed group estimator lands 2-5x above the theoretical NRMSE
// on every dataset, while the mixer matches theory. (Twisted/double
// tabulation would fix this; the mixer behaves like a random function.)
//
// The group-of-m runner is assembled inline and templated on the hasher so
// the comparison uses the exact same counting code path.
#include <cinttypes>
#include <cmath>

#include "bench_common.hpp"
#include "core/semi_triangle_counter.hpp"
#include "hash/edge_hash.hpp"
#include "hash/tabulation.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace rept::bench {
namespace {

// One REPT group of m processors sharing `hasher`; returns tau_hat = m *
// sum_i tau^(i) (the c = m estimate).
template <typename Hasher>
double RunGroup(const EdgeStream& stream, uint32_t m, const Hasher& hasher) {
  SemiTriangleCounter::Options opts;
  opts.track_local = false;
  std::vector<SemiTriangleCounter> counters;
  counters.reserve(m);
  for (uint32_t i = 0; i < m; ++i) counters.emplace_back(opts);
  for (const Edge& e : stream) {
    const uint32_t bucket = hasher.Bucket(e.u, e.v, m);
    for (uint32_t i = 0; i < m; ++i) {
      counters[i].CountArrival(e.u, e.v);
      if (i == bucket) counters[i].InsertSampled(e.u, e.v);
    }
  }
  double sum = 0.0;
  for (const auto& counter : counters) sum += counter.global();
  return static_cast<double>(m) * sum;
}

template <typename Hasher>
void Measure(const Dataset& d, uint32_t m, uint64_t runs, uint64_t seed,
             ThreadPool& pool, double* nrmse, double* seconds) {
  const double tau = static_cast<double>(d.exact.tau);
  ErrorStats err(tau);
  std::vector<double> estimates(runs, 0.0);
  SeedSequence seeds(seed, 23);
  WallTimer timer;
  ParallelFor(pool, runs, [&](size_t r) {
    estimates[r] = RunGroup(d.stream, m, Hasher(seeds.SeedFor(r)));
  });
  *seconds = timer.Seconds();
  for (double e : estimates) err.AddEstimate(e);
  *nrmse = err.nrmse();
}

int Main(int argc, char** argv) {
  CommonFlags common;
  common.runs = 40;
  uint64_t m = 10;
  FlagSet flags("Ablation: Mix vs tabulation edge hashing in REPT groups");
  common.Register(flags);
  flags.AddUint64("m", &m, "group size / sampling denominator");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Ablation: hash family, m=%" PRIu64 " runs=%" PRIu64
              " ===\n\n",
              m, ctx.runs);
  TablePrinter table({"dataset", "NRMSE mix", "NRMSE tabulation",
                      "t_mix(s)", "t_tab(s)", "theory NRMSE"});
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    double mix_nrmse, mix_sec, tab_nrmse, tab_sec;
    Measure<MixEdgeHasher>(d, static_cast<uint32_t>(m), ctx.runs, ctx.seed,
                           *ctx.pool, &mix_nrmse, &mix_sec);
    Measure<TabulationEdgeHasher>(d, static_cast<uint32_t>(m), ctx.runs,
                                  ctx.seed, *ctx.pool, &tab_nrmse, &tab_sec);
    // Theory at c = m: Var = tau(m-1) -> NRMSE = sqrt((m-1)/tau).
    const double theory = std::sqrt(
        (static_cast<double>(m) - 1.0) / static_cast<double>(d.exact.tau));
    table.AddRow({name, Fmt(mix_nrmse, 4), Fmt(tab_nrmse, 4),
                  Fmt(mix_sec, 3), Fmt(tab_sec, 3), Fmt(theory, 4)});
  }
  table.Print();
  std::printf(
      "\nexpected: mix matches the theoretical NRMSE; 3-independent simple "
      "tabulation sits measurably above it (REPT's variance bound needs "
      "4-wise independence for disjoint triangle pairs)\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
