// Ingest-throughput benchmark for the streaming-session API: edges/sec of
// the legacy one-shot batch Run() versus a session fed in chunks of various
// sizes, for REPT and the parallel baselines. Emits BENCH_ingest.json next
// to the binary (override with --out) so CI and EXPERIMENTS.md can track
// session overhead; prints the same numbers as a table.
//
//   build/bench/bench_ingest_throughput [--edges 2000000] [--chunk-list ...]
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_systems.hpp"
#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "core/streaming_estimator.hpp"
#include "graph/edge_source.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Measurement {
  std::string system;
  std::string mode;       // "batch" or "session"
  uint64_t chunk = 0;     // 0 for batch
  double seconds = 0.0;
  double edges_per_sec = 0.0;
  double global_estimate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_vertices = 100000;
  uint64_t num_edges = 2000000;
  uint64_t m = 20;
  uint64_t c = 20;
  uint64_t seed = 42;
  uint64_t threads = 0;
  std::string chunk_list = "1024,65536,1048576";
  std::string out = "BENCH_ingest.json";
  rept::FlagSet flags("batch vs session ingest throughput (BENCH_ingest.json)");
  flags.AddUint64("vertices", &num_vertices, "vertex-id space of the stream");
  flags.AddUint64("edges", &num_edges, "stream length");
  flags.AddUint64("m", &m, "sampling denominator");
  flags.AddUint64("c", &c, "logical processors");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddUint64("threads", &threads, "workers (0 = hardware concurrency)");
  flags.AddString("chunk-list", &chunk_list,
                  "comma-separated session chunk sizes (edges)");
  flags.AddString("out", &out, "output JSON path");
  rept::bench::ParseOrDie(flags, argc, argv);

  // The stream comes from the generator-backed source (fixed memory), then
  // is materialized once so the batch and session paths consume the exact
  // same edge sequence.
  rept::UniformRandomEdgeSource generator(
      static_cast<rept::VertexId>(num_vertices), num_edges, seed);
  auto stream = rept::ReadAll(generator);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 2;
  }
  rept::ThreadPool pool(static_cast<size_t>(threads));

  std::vector<uint64_t> chunks;
  for (const std::string& token : rept::bench::ParseDatasets(chunk_list)) {
    chunks.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }

  std::vector<std::unique_ptr<rept::EstimatorSystem>> systems;
  systems.push_back(rept::MakeRept(static_cast<uint32_t>(m),
                                   static_cast<uint32_t>(c),
                                   /*track_local=*/false));
  systems.push_back(rept::MakeParallelMascot(static_cast<uint32_t>(m),
                                             static_cast<uint32_t>(c),
                                             /*track_local=*/false));

  std::vector<Measurement> results;
  for (const auto& system : systems) {
    {
      rept::WallTimer timer;
      const rept::TriangleEstimates est = system->Run(*stream, seed, &pool);
      const double secs = timer.Seconds();
      results.push_back({system->Name(), "batch", 0, secs,
                         static_cast<double>(num_edges) / secs, est.global});
    }
    for (const uint64_t chunk : chunks) {
      if (chunk == 0) continue;
      rept::SessionOptions options;
      options.expected_edges = stream->size();
      options.expected_vertices = stream->num_vertices();
      // Source setup (incl. the stream copy it owns) stays outside the
      // timed region so batch and session time the same work.
      rept::InMemoryEdgeSource source{rept::EdgeStream(*stream)};
      rept::WallTimer timer;
      const auto session = system->CreateSession(seed, &pool, options);
      const auto ingested =
          rept::IngestAll(source, *session, static_cast<size_t>(chunk));
      const rept::TriangleEstimates est = session->Snapshot();
      const double secs = timer.Seconds();
      if (!ingested.ok() || *ingested != num_edges) {
        std::fprintf(stderr, "session ingest failed\n");
        return 2;
      }
      results.push_back({system->Name(), "session", chunk, secs,
                         static_cast<double>(num_edges) / secs, est.global});
    }
  }

  rept::TablePrinter table({"system", "mode", "chunk", "seconds",
                            "edges/sec", "tau_hat"});
  for (const Measurement& r : results) {
    table.AddRow({r.system, r.mode,
                  r.chunk == 0 ? "-" : std::to_string(r.chunk),
                  rept::bench::Fmt(r.seconds, 3),
                  rept::bench::Sci(r.edges_per_sec),
                  rept::bench::Sci(r.global_estimate)});
  }
  table.Print();

  std::FILE* json = std::fopen(out.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"ingest_throughput\",\n"
               "  \"vertices\": %" PRIu64 ",\n  \"edges\": %" PRIu64 ",\n"
               "  \"m\": %" PRIu64 ",\n  \"c\": %" PRIu64 ",\n"
               "  \"threads\": %zu,\n  \"results\": [\n",
               num_vertices, num_edges, m, c, pool.num_threads());
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& r = results[i];
    std::fprintf(json,
                 "    {\"system\": \"%s\", \"mode\": \"%s\", "
                 "\"chunk_edges\": %" PRIu64 ", \"seconds\": %.6f, "
                 "\"edges_per_sec\": %.1f, \"global_estimate\": %.1f}%s\n",
                 r.system.c_str(), r.mode.c_str(), r.chunk, r.seconds,
                 r.edges_per_sec, r.global_estimate,
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
