// Ingest-throughput benchmark for the streaming-session API.
//
// Two sections, both emitted to BENCH_ingest.json (override with --out) and
// printed as tables so CI and EXPERIMENTS.md can track the perf trajectory:
//  1. legacy batch Run() vs a session fed in chunks (REPT + a baseline),
//     as in previous revisions of this bench;
//  2. the dispatch-pipeline sweep: broadcast vs routed ingest across a
//     batch-size x thread-count grid, with the routed pipeline's per-stage
//     task time (route = hash+scatter, estimate = replay) recorded per
//     cell. The JSON fields are `route_task_seconds` /
//     `estimate_task_seconds`: summed per-task time across workers, which
//     legitimately exceeds the wall `seconds` whenever the pipelined
//     schedule overlaps the stages — they answer "where does the work go",
//     not "where does the wall clock go".
// Routed dispatch evaluates each fused hash group's hash once per edge
// (c/m per edge) where broadcast evaluates c per edge, so the gap widens
// with c — the default c is 64 to make that visible.
//
//   build/bench/bench_ingest_throughput [--edges 2000000] [--c 64]
//       [--chunk-list 1024,65536,1048576] [--thread-list 1,2,4,0]
//
// --smoke is the CI canary: a small stream swept at threads 1 and 2, which
// exits nonzero if any thread count changes the global estimate (parallel
// replay must be a pure scheduling change) or if 2-thread routed throughput
// collapses below a generous floor of the 1-thread run (catches lock-convoy
// regressions even on single-core runners, where 2 threads should roughly
// tie, not tank).
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_systems.hpp"
#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "core/rept_session.hpp"
#include "core/streaming_estimator.hpp"
#include "graph/edge_source.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Measurement {
  std::string system;
  std::string mode;      // "batch", "session", or "dispatch-sweep"
  std::string dispatch;  // "routed" or "broadcast" ("" for baselines)
  uint64_t chunk = 0;    // 0 for batch
  size_t threads = 0;
  double seconds = 0.0;
  double edges_per_sec = 0.0;
  double global_estimate = 0.0;
  // Routed-pipeline stage split (0 unless the session ran routed dispatch).
  // These are *summed task times* — total work performed by the stage
  // across all workers — not disjoint wall intervals, so under pipelined
  // overlap their sum exceeds `seconds` by up to the parallel speedup. The
  // JSON field names carry the `_task_` infix to make that unmissable.
  double route_task_seconds = 0.0;
  double estimate_task_seconds = 0.0;
  uint64_t sub_batches = 0;
};

std::vector<uint64_t> ParseList(const std::string& list) {
  std::vector<uint64_t> values;
  for (const std::string& token : rept::bench::ParseDatasets(list)) {
    values.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  uint64_t num_vertices = 100000;
  uint64_t num_edges = 2000000;
  uint64_t m = 20;
  uint64_t c = 64;
  uint64_t seed = 42;
  uint64_t threads = 0;
  std::string chunk_list = "1024,65536,1048576";
  std::string thread_list = "1,2,4,0";
  std::string out = "BENCH_ingest.json";
  std::string metrics_out;
  rept::FlagSet flags(
      "batch vs session ingest + broadcast vs routed dispatch sweep "
      "(BENCH_ingest.json)");
  flags.AddBool("smoke", &smoke,
                "CI canary: small stream, threads 1+2, determinism + "
                "throughput-floor gates (nonzero exit on failure)");
  flags.AddUint64("vertices", &num_vertices, "vertex-id space of the stream");
  flags.AddUint64("edges", &num_edges, "stream length");
  flags.AddUint64("m", &m, "sampling denominator");
  flags.AddUint64("c", &c, "logical processors");
  flags.AddUint64("seed", &seed, "seed");
  flags.AddUint64("threads", &threads,
                  "workers for section 1 (0 = hardware concurrency)");
  flags.AddString("chunk-list", &chunk_list,
                  "comma-separated session chunk sizes (edges)");
  flags.AddString("thread-list", &thread_list,
                  "comma-separated worker counts for the dispatch sweep "
                  "(0 = hardware concurrency)");
  flags.AddString("out", &out, "output JSON path");
  flags.AddString("metrics-out", &metrics_out,
                  "also dump the process obs-metrics registry as JSON "
                  "(empty = off)");
  rept::bench::ParseOrDie(flags, argc, argv);
  if (smoke) {
    num_vertices = 20000;
    num_edges = 200000;
    chunk_list = "65536";
    thread_list = "1,2";
    // The CI overhead gate runs --smoke with an explicit --out and diffs
    // the throughput against a REPT_OBS=OFF build; only the default path
    // is discarded.
    if (out == "BENCH_ingest.json") out = "/dev/null";
  }

  // The stream comes from the generator-backed source (fixed memory), then
  // is materialized once so every measured path consumes the exact same
  // edge sequence.
  rept::UniformRandomEdgeSource generator(
      static_cast<rept::VertexId>(num_vertices), num_edges, seed);
  auto stream = rept::ReadAll(generator);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 2;
  }
  rept::ThreadPool pool(static_cast<size_t>(threads));

  const std::vector<uint64_t> chunks = ParseList(chunk_list);
  rept::SessionOptions options;
  options.expected_edges = stream->size();
  options.expected_vertices = stream->num_vertices();

  // --- Section 1: legacy batch Run() vs chunked session ingest. ---
  std::vector<Measurement> results;
  std::vector<std::unique_ptr<rept::EstimatorSystem>> systems;
  systems.push_back(rept::MakeRept(static_cast<uint32_t>(m),
                                   static_cast<uint32_t>(c),
                                   /*track_local=*/false));
  systems.push_back(rept::MakeParallelMascot(static_cast<uint32_t>(m),
                                             static_cast<uint32_t>(c),
                                             /*track_local=*/false));
  for (const auto& system : systems) {
    {
      rept::WallTimer timer;
      const rept::TriangleEstimates est = system->Run(*stream, seed, &pool);
      const double secs = timer.Seconds();
      Measurement r;
      r.system = system->Name();
      r.mode = "batch";
      r.threads = pool.num_threads();
      r.seconds = secs;
      r.edges_per_sec = static_cast<double>(num_edges) / secs;
      r.global_estimate = est.global;
      results.push_back(r);
    }
    for (const uint64_t chunk : chunks) {
      if (chunk == 0) continue;
      // Source setup (incl. the stream copy it owns) stays outside the
      // timed region so batch and session time the same work.
      rept::InMemoryEdgeSource source{rept::EdgeStream(*stream)};
      rept::WallTimer timer;
      const auto session = system->CreateSession(seed, &pool, options).value();
      const auto ingested =
          rept::IngestAll(source, *session, static_cast<size_t>(chunk));
      const rept::TriangleEstimates est = session->Snapshot();
      const double secs = timer.Seconds();
      if (!ingested.ok() || *ingested != num_edges) {
        std::fprintf(stderr, "session ingest failed\n");
        return 2;
      }
      Measurement r;
      r.system = system->Name();
      r.mode = "session";
      r.chunk = chunk;
      r.threads = pool.num_threads();
      r.seconds = secs;
      r.edges_per_sec = static_cast<double>(num_edges) / secs;
      r.global_estimate = est.global;
      // REPT sessions default to routed dispatch; surface their stage split
      // here too so every routed row in the file carries it, not just the
      // sweep section. Baseline sessions have no router and stay at 0.
      if (const auto* rept_session =
              dynamic_cast<const rept::ReptSession*>(session.get())) {
        r.route_task_seconds = rept_session->ingest_stats().route_seconds;
        r.estimate_task_seconds =
            rept_session->ingest_stats().estimate_seconds;
        r.sub_batches = rept_session->ingest_stats().sub_batches;
      }
      results.push_back(r);
    }
  }

  // --- Section 2: broadcast vs routed dispatch, chunk x threads sweep. ---
  for (const uint64_t workers : ParseList(thread_list)) {
    rept::ThreadPool sweep_pool(static_cast<size_t>(workers));
    for (const uint64_t chunk : chunks) {
      if (chunk == 0) continue;
      for (const rept::DispatchMode mode :
           {rept::DispatchMode::kBroadcast, rept::DispatchMode::kRouted}) {
        rept::ReptConfig config;
        config.m = static_cast<uint32_t>(m);
        config.c = static_cast<uint32_t>(c);
        config.track_local = false;
        config.dispatch = mode;
        rept::InMemoryEdgeSource source{rept::EdgeStream(*stream)};
        rept::WallTimer timer;
        rept::ReptSession session(config, seed, &sweep_pool, options);
        const auto ingested =
            rept::IngestAll(source, session, static_cast<size_t>(chunk));
        const rept::TriangleEstimates est = session.Snapshot();
        const double secs = timer.Seconds();
        if (!ingested.ok() || *ingested != num_edges) {
          std::fprintf(stderr, "dispatch sweep ingest failed\n");
          return 2;
        }
        Measurement r;
        r.system = session.Name();
        r.mode = "dispatch-sweep";
        r.dispatch =
            mode == rept::DispatchMode::kRouted ? "routed" : "broadcast";
        r.chunk = chunk;
        r.threads = sweep_pool.num_threads();
        r.seconds = secs;
        r.edges_per_sec = static_cast<double>(num_edges) / secs;
        r.global_estimate = est.global;
        r.route_task_seconds = session.ingest_stats().route_seconds;
        r.estimate_task_seconds = session.ingest_stats().estimate_seconds;
        r.sub_batches = session.ingest_stats().sub_batches;
        results.push_back(r);
      }
    }
  }

  rept::TablePrinter table({"system", "mode", "dispatch", "chunk", "threads",
                            "seconds", "edges/sec", "route(task)",
                            "estimate(task)", "tau_hat"});
  for (const Measurement& r : results) {
    table.AddRow({r.system, r.mode, r.dispatch.empty() ? "-" : r.dispatch,
                  r.chunk == 0 ? "-" : std::to_string(r.chunk),
                  std::to_string(r.threads), rept::bench::Fmt(r.seconds, 3),
                  rept::bench::Sci(r.edges_per_sec),
                  rept::bench::Fmt(r.route_task_seconds, 3),
                  rept::bench::Fmt(r.estimate_task_seconds, 3),
                  rept::bench::Sci(r.global_estimate)});
  }
  table.Print();

  using rept::bench::BenchJsonWriter;
  BenchJsonWriter json("ingest_throughput");
  json.Meta("vertices", BenchJsonWriter::NumU(num_vertices));
  json.Meta("edges", BenchJsonWriter::NumU(num_edges));
  json.Meta("m", BenchJsonWriter::NumU(m));
  json.Meta("c", BenchJsonWriter::NumU(c));
  // Thread counts above this are oversubscribed on the machine that
  // produced the file — read speedup columns against it.
  json.Meta("hardware_threads", BenchJsonWriter::NumU(rept::HardwareThreads()));
  const std::string dataset = generator.Name();
  for (const Measurement& r : results) {
    std::string name = r.system + "/" + r.mode;
    if (!r.dispatch.empty()) name += "/" + r.dispatch;
    json.Result(
        name, dataset, r.threads, r.edges_per_sec,
        {{"mode", BenchJsonWriter::Str(r.mode)},
         {"dispatch", BenchJsonWriter::Str(r.dispatch)},
         {"chunk_edges", BenchJsonWriter::NumU(r.chunk)},
         {"seconds", BenchJsonWriter::Num(r.seconds)},
         {"route_task_seconds", BenchJsonWriter::Num(r.route_task_seconds)},
         {"estimate_task_seconds",
          BenchJsonWriter::Num(r.estimate_task_seconds)},
         {"sub_batches", BenchJsonWriter::NumU(r.sub_batches)},
         {"global_estimate", BenchJsonWriter::Num(r.global_estimate)}});
  }
  if (!json.WriteTo(out)) return 2;
  if (!metrics_out.empty() &&
      !rept::obs::WriteMetricsJson(metrics_out).ok()) {
    std::fprintf(stderr, "failed to write --metrics-out %s\n",
                 metrics_out.c_str());
    return 2;
  }

  if (smoke) {
    // Gate 1: determinism. Every sweep cell of one dispatch mode saw the
    // same stream with the same seed, so the estimate must be bit-equal
    // across thread counts and chunk sizes (parallel replay is a pure
    // scheduling change).
    double routed_1t = 0.0, routed_2t = 0.0;
    for (const Measurement& r : results) {
      if (r.mode != "dispatch-sweep") continue;
      for (const Measurement& other : results) {
        if (other.mode != "dispatch-sweep" || other.dispatch != r.dispatch) {
          continue;
        }
        if (r.global_estimate != other.global_estimate) {
          std::fprintf(stderr,
                       "SMOKE FAIL: %s estimate differs across cells "
                       "(threads %zu vs %zu): %.17g vs %.17g\n",
                       r.dispatch.c_str(), r.threads, other.threads,
                       r.global_estimate, other.global_estimate);
          return 1;
        }
      }
      if (r.dispatch == "routed" && r.threads == 1) routed_1t = r.edges_per_sec;
      if (r.dispatch == "routed" && r.threads == 2) routed_2t = r.edges_per_sec;
    }
    // Gate 2: throughput floor. Even on a single-core runner a 2-worker
    // routed ingest should roughly tie serial; 0.4x is the generous floor
    // that still catches a lock convoy or a serialization bug.
    if (routed_1t <= 0.0 || routed_2t <= 0.0) {
      std::fprintf(stderr, "SMOKE FAIL: missing routed 1t/2t rows\n");
      return 1;
    }
    if (routed_2t < 0.4 * routed_1t) {
      std::fprintf(stderr,
                   "SMOKE FAIL: routed 2-thread throughput %.3g e/s fell "
                   "below 0.4x of 1-thread %.3g e/s\n",
                   routed_2t, routed_1t);
      return 1;
    }
    std::printf("smoke OK: estimates thread-invariant, routed 2t/1t = %.2fx\n",
                routed_2t / routed_1t);
  }
  return 0;
}
