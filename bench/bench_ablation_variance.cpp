// §III-C reproduction: predicted error-reduction factors of REPT over
// directly-parallelized MASCOT/TRIEST, from the closed forms with each
// stand-in's measured tau and eta plugged in, across an (m, c) grid. This
// is the quantitative version of the paper's "several times more accurate"
// claim and complements the Monte-Carlo property tests.
#include <cinttypes>
#include <cmath>

#include "bench_common.hpp"
#include "core/variance.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  FlagSet flags(
      "Predicted NRMSE ratio MASCOT/REPT from closed-form variances");
  common.Register(flags);
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  const uint32_t ms[] = {10, 100};
  std::printf("=== Closed-form NRMSE ratio: parallel MASCOT / REPT ===\n\n");
  for (uint32_t m : ms) {
    std::printf("--- p = 1/%u ---\n", m);
    std::vector<uint32_t> cs;
    if (m == 10) {
      cs = {2, 5, 10, 16, 20, 32};
    } else {
      cs = {20, 50, 100, 160, 200, 320};
    }
    std::vector<std::string> header = {"dataset", "eta/tau"};
    for (uint32_t c : cs) header.push_back("c=" + std::to_string(c));
    TablePrinter table(header);
    for (const std::string& name : ctx.dataset_names) {
      const Dataset d = LoadDataset(ctx, name);
      const double tau = static_cast<double>(d.exact.tau);
      const double eta = static_cast<double>(d.exact.eta);
      std::vector<std::string> row = {name, Fmt(eta / tau, 3)};
      for (uint32_t c : cs) {
        const double ratio =
            std::sqrt(variance::ParallelMascot(tau, eta, m, c) /
                      variance::Rept(tau, eta, m, c));
        row.push_back(Fmt(ratio, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "reading: ratio > 1 means REPT wins; grows with c and with eta/tau, "
      "peaking at multiples of m where the covariance term vanishes\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
