// Figure 7 reproduction: runtime of the four parallel methods vs 1/p at a
// fixed processor count c = 10.
//
// Expected shape (paper): REPT ~= parallel MASCOT; parallel TRIEST 2x-4x
// slower (reservoir insert/evict churn); parallel GPS 4x-10x slower
// (priority computation + heap). Absolute numbers depend on hardware; the
// ratios are the reproduced claim.
#include <cinttypes>

#include "baselines/baseline_systems.hpp"
#include "bench_common.hpp"
#include "runner/runtime_measure.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  uint64_t c = 10;
  uint64_t repeats = 3;
  FlagSet flags("Figure 7: runtime vs 1/p at c = 10");
  common.Register(flags);
  flags.AddUint64("c", &c, "number of logical processors");
  flags.AddUint64("repeats", &repeats, "timed repetitions (median reported)");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  const std::vector<uint32_t> inverse_p = {2, 8, 16, 32};

  std::printf("=== Figure 7: runtime (seconds) vs 1/p, c = %" PRIu64
              " ===\n\n",
              c);
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    std::printf("--- %s (|E|=%" PRIu64 ") ---\n", name.c_str(),
                d.stream.size());
    TablePrinter table({"1/p", "REPT", "MASCOT", "TRIEST", "GPS",
                        "TRIEST/REPT", "GPS/REPT"});
    for (uint32_t m : inverse_p) {
      // Runtime is the point here: skip local tracking like the paper's
      // timing runs and measure a full pass per method.
      const auto rept = MakeRept(m, static_cast<uint32_t>(c), false);
      const auto mascot =
          MakeParallelMascot(m, static_cast<uint32_t>(c), false);
      const auto triest =
          MakeParallelTriest(m, static_cast<uint32_t>(c), false);
      const auto gps = MakeParallelGps(m, static_cast<uint32_t>(c), false);

      const double t_rept =
          MeasureRuntime(*rept, d.stream, ctx.seed, ctx.pool.get(),
                         static_cast<uint32_t>(repeats))
              .median_seconds;
      const double t_mascot =
          MeasureRuntime(*mascot, d.stream, ctx.seed, ctx.pool.get(),
                         static_cast<uint32_t>(repeats))
              .median_seconds;
      const double t_triest =
          MeasureRuntime(*triest, d.stream, ctx.seed, ctx.pool.get(),
                         static_cast<uint32_t>(repeats))
              .median_seconds;
      const double t_gps =
          MeasureRuntime(*gps, d.stream, ctx.seed, ctx.pool.get(),
                         static_cast<uint32_t>(repeats))
              .median_seconds;

      table.AddRow({std::to_string(m), Fmt(t_rept, 3), Fmt(t_mascot, 3),
                    Fmt(t_triest, 3), Fmt(t_gps, 3),
                    Fmt(t_triest / t_rept, 3), Fmt(t_gps / t_rept, 3)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: REPT ~= MASCOT; TRIEST 2-4x slower; GPS 4-10x slower\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
