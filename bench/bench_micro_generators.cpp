// Micro-benchmark: synthetic dataset generation throughput.
#include <benchmark/benchmark.h>

#include "gen/barabasi_albert.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/holme_kim.hpp"
#include "gen/rmat.hpp"

namespace rept {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  const uint64_t edges = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::ErdosRenyi({.num_vertices = 100000,
                         .num_edges = edges},
                        42)
            .size());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_ErdosRenyi)->Arg(100000);

void BM_Rmat(benchmark::State& state) {
  const uint64_t edges = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::Rmat({.scale = 17, .num_edges = edges}, 42).size());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_Rmat)->Arg(100000);

void BM_BarabasiAlbert(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::BarabasiAlbert({.num_vertices = 50000, .edges_per_vertex = 2},
                            42)
            .size());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BarabasiAlbert);

void BM_HolmeKim(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::HolmeKim({.num_vertices = 6000,
                                            .edges_per_vertex = 16,
                                            .triad_probability = 0.95},
                                           42)
                                 .size());
  }
  state.SetItemsProcessed(state.iterations() * 96000);
}
BENCHMARK(BM_HolmeKim);

}  // namespace
}  // namespace rept
