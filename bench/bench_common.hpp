// Shared plumbing for the figure/table reproduction binaries: common flags,
// dataset selection, exact-count computation, and result emission.
//
// Every binary runs standalone with fast defaults (small datasets, few
// runs) so `for b in build/bench/*; do $b; done` finishes in minutes;
// --size=default --runs=N raise fidelity toward the paper's setup.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "graph/edge_stream.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rept::bench {

struct BenchContext {
  gen::DatasetSize size = gen::DatasetSize::kSmall;
  uint64_t seed = 42;
  uint64_t runs = 3;
  uint64_t threads = 0;  // 0 = hardware concurrency
  std::vector<std::string> dataset_names;
  std::unique_ptr<ThreadPool> pool;
};

/// Registers the common flags on `flags`, binding them to the strings/ints
/// the caller passes; call FinishContext after Parse.
struct CommonFlags {
  std::string size = "small";
  std::string datasets = "all";
  uint64_t seed = 42;
  uint64_t runs = 10;
  uint64_t threads = 0;

  void Register(FlagSet& flags) {
    flags.AddString("size", &size, "dataset scale: tiny | small | default");
    flags.AddString("datasets", &datasets,
                    "comma-separated stand-in names or 'all'");
    flags.AddUint64("seed", &seed, "master seed");
    flags.AddUint64("runs", &runs, "independent runs per NRMSE point");
    flags.AddUint64("threads", &threads,
                    "worker threads (0 = hardware concurrency)");
  }
};

inline gen::DatasetSize ParseSize(const std::string& s) {
  if (s == "tiny") return gen::DatasetSize::kTiny;
  if (s == "small") return gen::DatasetSize::kSmall;
  if (s == "default") return gen::DatasetSize::kDefault;
  std::fprintf(stderr, "unknown --size '%s' (tiny|small|default)\n",
               s.c_str());
  std::exit(2);
}

inline std::vector<std::string> ParseDatasets(const std::string& csv) {
  std::vector<std::string> names;
  if (csv == "all") {
    for (const auto& info : gen::DatasetCatalog()) names.push_back(info.name);
    return names;
  }
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!token.empty()) names.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

inline BenchContext MakeContext(const CommonFlags& common) {
  BenchContext ctx;
  ctx.size = ParseSize(common.size);
  ctx.seed = common.seed;
  ctx.runs = common.runs;
  ctx.threads = common.threads;
  ctx.dataset_names = ParseDatasets(common.datasets);
  ctx.pool = std::make_unique<ThreadPool>(
      static_cast<size_t>(common.threads));
  return ctx;
}

struct Dataset {
  EdgeStream stream;
  ExactCounts exact;
};

/// Generates a stand-in and computes its ground truth (with eta).
inline Dataset LoadDataset(const BenchContext& ctx, const std::string& name) {
  auto stream = gen::MakeDataset(name, ctx.size, ctx.seed);
  if (!stream.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 stream.status().ToString().c_str());
    std::exit(2);
  }
  Dataset d{std::move(stream).value(), {}};
  d.exact = ComputeExactCounts(d.stream);
  return d;
}

/// Parses flags or exits (0 for --help, 2 for bad usage).
inline void ParseOrDie(FlagSet& flags, int argc, char** argv) {
  const Status st = flags.Parse(argc, argv);
  if (st.ok()) return;
  if (st.code() == StatusCode::kNotFound) std::exit(0);  // --help
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::exit(2);
}

inline std::string Fmt(double v, int precision = 4) {
  return TablePrinter::FormatDouble(v, precision);
}

inline std::string Sci(double v) { return TablePrinter::FormatSci(v, 2); }

/// \brief Standardized BENCH_*.json emitter. Every bench result file has
/// the shape
///
///   {"bench": "<bench>", "meta": {...},
///    "results": [{"name": ..., "dataset": ..., "threads": N,
///                 "edges_per_sec": X, ...bench-specific extras}, ...]}
///
/// so CI and EXPERIMENTS.md tooling can track any bench's throughput
/// trajectory with one parser. `name` identifies the measured
/// configuration, `dataset` the input, and `edges_per_sec` the primary
/// throughput metric; everything else rides in the extras.
///
/// Extras naming convention: a `seconds` extra is a wall-clock interval of
/// the measured region. Fields named `*_task_seconds` are *summed task
/// time* — per-stage work totaled across pool workers — and may exceed the
/// row's wall `seconds` whenever stages overlap (pipelined routed ingest)
/// or workers oversubscribe cores; never add wall and task fields together.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  /// Raw-value helpers: Str quotes/escapes, Num/NumU render numbers.
  static std::string Str(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += '"';
    return out;
  }
  static std::string Num(double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
  }
  static std::string NumU(uint64_t v) { return std::to_string(v); }

  /// Adds a top-level meta field (raw JSON value; use Str/Num/NumU).
  void Meta(const std::string& key, const std::string& raw_value) {
    meta_.emplace_back(key, raw_value);
  }

  /// Adds one standardized result row plus bench-specific extras (raw JSON
  /// values, same helpers).
  void Result(
      const std::string& name, const std::string& dataset, size_t threads,
      double edges_per_sec,
      const std::vector<std::pair<std::string, std::string>>& extra = {}) {
    std::string row = "{\"name\": " + Str(name) +
                      ", \"dataset\": " + Str(dataset) +
                      ", \"threads\": " + std::to_string(threads) +
                      ", \"edges_per_sec\": " + Num(edges_per_sec);
    for (const auto& [key, raw_value] : extra) {
      row += ", \"" + key + "\": " + raw_value;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Writes the file (false + stderr message on I/O failure).
  bool WriteTo(const std::string& path) const {
    std::FILE* json = std::fopen(path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(json, "{\n  \"bench\": %s,\n", Str(bench_).c_str());
    std::fprintf(json, "  \"meta\": {");
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(json, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   meta_[i].first.c_str(), meta_[i].second.c_str());
    }
    std::fprintf(json, "},\n  \"results\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(json, "    %s%s\n", rows_[i].c_str(),
                   i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> rows_;
};

}  // namespace rept::bench
