// Shared plumbing for the figure/table reproduction binaries: common flags,
// dataset selection, exact-count computation, and result emission.
//
// Every binary runs standalone with fast defaults (small datasets, few
// runs) so `for b in build/bench/*; do $b; done` finishes in minutes;
// --size=default --runs=N raise fidelity toward the paper's setup.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exact/exact_counts.hpp"
#include "gen/dataset_suite.hpp"
#include "graph/edge_stream.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rept::bench {

struct BenchContext {
  gen::DatasetSize size = gen::DatasetSize::kSmall;
  uint64_t seed = 42;
  uint64_t runs = 3;
  uint64_t threads = 0;  // 0 = hardware concurrency
  std::vector<std::string> dataset_names;
  std::unique_ptr<ThreadPool> pool;
};

/// Registers the common flags on `flags`, binding them to the strings/ints
/// the caller passes; call FinishContext after Parse.
struct CommonFlags {
  std::string size = "small";
  std::string datasets = "all";
  uint64_t seed = 42;
  uint64_t runs = 10;
  uint64_t threads = 0;

  void Register(FlagSet& flags) {
    flags.AddString("size", &size, "dataset scale: tiny | small | default");
    flags.AddString("datasets", &datasets,
                    "comma-separated stand-in names or 'all'");
    flags.AddUint64("seed", &seed, "master seed");
    flags.AddUint64("runs", &runs, "independent runs per NRMSE point");
    flags.AddUint64("threads", &threads,
                    "worker threads (0 = hardware concurrency)");
  }
};

inline gen::DatasetSize ParseSize(const std::string& s) {
  if (s == "tiny") return gen::DatasetSize::kTiny;
  if (s == "small") return gen::DatasetSize::kSmall;
  if (s == "default") return gen::DatasetSize::kDefault;
  std::fprintf(stderr, "unknown --size '%s' (tiny|small|default)\n",
               s.c_str());
  std::exit(2);
}

inline std::vector<std::string> ParseDatasets(const std::string& csv) {
  std::vector<std::string> names;
  if (csv == "all") {
    for (const auto& info : gen::DatasetCatalog()) names.push_back(info.name);
    return names;
  }
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!token.empty()) names.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

inline BenchContext MakeContext(const CommonFlags& common) {
  BenchContext ctx;
  ctx.size = ParseSize(common.size);
  ctx.seed = common.seed;
  ctx.runs = common.runs;
  ctx.threads = common.threads;
  ctx.dataset_names = ParseDatasets(common.datasets);
  ctx.pool = std::make_unique<ThreadPool>(
      static_cast<size_t>(common.threads));
  return ctx;
}

struct Dataset {
  EdgeStream stream;
  ExactCounts exact;
};

/// Generates a stand-in and computes its ground truth (with eta).
inline Dataset LoadDataset(const BenchContext& ctx, const std::string& name) {
  auto stream = gen::MakeDataset(name, ctx.size, ctx.seed);
  if (!stream.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 stream.status().ToString().c_str());
    std::exit(2);
  }
  Dataset d{std::move(stream).value(), {}};
  d.exact = ComputeExactCounts(d.stream);
  return d;
}

/// Parses flags or exits (0 for --help, 2 for bad usage).
inline void ParseOrDie(FlagSet& flags, int argc, char** argv) {
  const Status st = flags.Parse(argc, argv);
  if (st.ok()) return;
  if (st.code() == StatusCode::kNotFound) std::exit(0);  // --help
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::exit(2);
}

inline std::string Fmt(double v, int precision = 4) {
  return TablePrinter::FormatDouble(v, precision);
}

inline std::string Sci(double v) { return TablePrinter::FormatSci(v, 2); }

}  // namespace rept::bench
