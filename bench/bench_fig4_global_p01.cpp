// Figure 4 reproduction: global triangle count NRMSE vs c at p = 0.1
// (m = 10).
#include "bench_accuracy_figure.hpp"

int main(int argc, char** argv) {
  rept::bench::AccuracyFigureSpec spec;
  spec.title = "Figure 4: global NRMSE vs c, p = 0.1";
  spec.m = 10;
  spec.c_values = {2, 8, 16, 32};
  spec.local = false;
  spec.include_gps = true;
  spec.paper_note =
      "e.g. Twitter at c=32: REPT 26.9x better than MASCOT/TRIEST, 80.8x "
      "better than GPS; all methods improve as p grows 0.01 -> 0.1";
  return rept::bench::RunAccuracyFigure(spec, argc, argv);
}
