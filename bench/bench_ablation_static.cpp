// §III-D scope check: when the graph is static and memory-resident, wedge
// sampling should reach a given accuracy cheaper than REPT (which is built
// for one-pass streams) — the trade the paper itself concedes. This bench
// reports, per dataset, the NRMSE of (a) REPT(m, c=m) and (b) wedge
// sampling with a wedge budget spending comparable time, plus the time for
// the CSR build wedge sampling needs and a one-pass stream does not.
#include <cinttypes>

#include "baselines/baseline_systems.hpp"
#include "baselines/wedge_sampler.hpp"
#include "bench_common.hpp"
#include "graph/graph_builder.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  common.runs = 30;
  uint64_t m = 10;
  uint64_t wedges = 200000;
  FlagSet flags("Ablation: REPT (streaming) vs wedge sampling (static)");
  common.Register(flags);
  flags.AddUint64("m", &m, "REPT sampling denominator (c = m)");
  flags.AddUint64("wedges", &wedges, "wedge samples per run");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== §III-D: streaming REPT vs static wedge sampling ===\n\n");
  TablePrinter table({"dataset", "NRMSE REPT", "t_REPT(s)", "NRMSE wedge",
                      "t_wedge(s)", "t_csr_build(s)"});
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    const double tau = static_cast<double>(d.exact.tau);

    // (a) REPT at c = m (covariance-free regime).
    const auto rept = MakeRept(static_cast<uint32_t>(m),
                               static_cast<uint32_t>(m), false);
    ErrorStats rept_err(tau);
    SeedSequence seeds(ctx.seed, 31);
    WallTimer rept_timer;
    for (uint64_t r = 0; r < ctx.runs; ++r) {
      rept_err.AddEstimate(
          rept->Run(d.stream, seeds.SeedFor(r), ctx.pool.get()).global);
    }
    const double t_rept = rept_timer.Seconds() / static_cast<double>(ctx.runs);

    // (b) Wedge sampling needs the static CSR first.
    WallTimer build_timer;
    GraphBuilder builder;
    builder.AddEdges(d.stream.edges());
    const Graph graph = builder.Build(d.stream.num_vertices());
    const double t_build = build_timer.Seconds();
    const WedgeSampler sampler(graph);
    ErrorStats wedge_err(tau);
    WallTimer wedge_timer;
    for (uint64_t r = 0; r < ctx.runs; ++r) {
      wedge_err.AddEstimate(
          sampler.EstimateGlobal(wedges, seeds.SeedFor(1000 + r)));
    }
    const double t_wedge =
        wedge_timer.Seconds() / static_cast<double>(ctx.runs);

    table.AddRow({name, Fmt(rept_err.nrmse(), 4), Fmt(t_rept, 4),
                  Fmt(wedge_err.nrmse(), 4), Fmt(t_wedge, 4),
                  Fmt(t_build, 4)});
  }
  table.Print();
  std::printf(
      "\nexpected (paper §III-D): at comparable per-run time the static "
      "wedge sampler is more accurate — REPT's edge is the one-pass "
      "streaming setting, not static graphs\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
