// Ablation: paper-faithful vs strict eta pair counting (DESIGN.md §3.1).
//
// Algorithm 2 initializes a stored edge's pair counter with the triangles it
// just closed — triangles whose *last* edge is the stored edge. Pairs formed
// through such triangles are excluded by the definition of eta, so the
// paper-faithful estimator eta_hat carries a positive bias of order eta'/m.
// This bench quantifies (a) the bias of eta_hat in both modes and (b) its
// (negligible) effect on the final combined estimate.
#include <cinttypes>

#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  common.runs = 100;
  uint64_t m = 8;
  uint64_t c = 19;  // c1=2 full groups + remainder c2=3 -> pair tracking on
  FlagSet flags("Ablation: eta pair-counting mode (paper vs strict)");
  common.Register(flags);
  flags.AddUint64("m", &m, "sampling denominator (p = 1/m)");
  flags.AddUint64("c", &c, "processors (must have c > m, c % m != 0)");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Ablation: eta_hat bias, m=%" PRIu64 " c=%" PRIu64
              " runs=%" PRIu64 " ===\n\n",
              m, c, ctx.runs);
  TablePrinter table({"dataset", "eta", "paper eta_hat", "strict eta_hat",
                      "paper bias", "strict bias", "NRMSE paper",
                      "NRMSE strict"});
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    const double tau = static_cast<double>(d.exact.tau);
    const double eta = static_cast<double>(d.exact.eta);

    ReptConfig paper_cfg;
    paper_cfg.m = static_cast<uint32_t>(m);
    paper_cfg.c = static_cast<uint32_t>(c);
    paper_cfg.track_local = false;
    ReptConfig strict_cfg = paper_cfg;
    strict_cfg.strict_eta_pairs = true;
    const ReptEstimator paper(paper_cfg);
    const ReptEstimator strict(strict_cfg);

    RunningStats paper_eta, strict_eta;
    ErrorStats paper_err(tau), strict_err(tau);
    SeedSequence seeds(ctx.seed, 17);
    for (uint64_t r = 0; r < ctx.runs; ++r) {
      const auto dp = paper.RunDetailed(d.stream, seeds.SeedFor(r),
                                        ctx.pool.get());
      const auto ds = strict.RunDetailed(d.stream, seeds.SeedFor(r),
                                         ctx.pool.get());
      paper_eta.Add(dp.eta_hat);
      strict_eta.Add(ds.eta_hat);
      paper_err.AddEstimate(dp.estimates.global);
      strict_err.AddEstimate(ds.estimates.global);
    }
    table.AddRow({name, Sci(eta), Sci(paper_eta.mean()),
                  Sci(strict_eta.mean()),
                  Fmt((paper_eta.mean() - eta) / eta, 3),
                  Fmt((strict_eta.mean() - eta) / eta, 3),
                  Fmt(paper_err.nrmse(), 4), Fmt(strict_err.nrmse(), 4)});
  }
  table.Print();
  std::printf(
      "\nexpected: strict bias ~0; paper bias positive and O(1/m); final "
      "NRMSE nearly identical (eta only steers combination weights)\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
