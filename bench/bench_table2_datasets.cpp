// Table II reproduction: statistics of the dataset suite.
//
// Paper: eight real graphs (nodes / edges / triangles). Here: the synthetic
// stand-ins with their measured statistics, printed next to the paper's
// originals so the scale substitution is explicit. The property that
// matters downstream is the spread of eta/tau (see bench_fig1).
#include "bench_common.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_stats.hpp"

namespace rept::bench {
namespace {

struct PaperRow {
  const char* name;
  const char* nodes;
  const char* edges;
  const char* triangles;
};

constexpr PaperRow kPaperTable2[] = {
    {"Twitter", "41,652,231", "1,202,513,046", "34,824,916,864"},
    {"com-Orkut", "3,072,441", "117,185,803", "627,584,181"},
    {"LiveJournal", "5,189,809", "48,688,097", "177,820,130"},
    {"Pokec", "1,632,803", "22,301,964", "32,557,458"},
    {"Flickr", "105,938", "2,316,948", "107,987,357"},
    {"Wiki-Talk", "2,394,385", "4,659,565", "9,203,519"},
    {"Web-Google", "875,713", "4,322,051", "13,391,903"},
    {"YouTube", "1,138,499", "2,990,443", "3,056,386"},
};

int Main(int argc, char** argv) {
  CommonFlags common;
  FlagSet flags("Table II: dataset statistics (stand-ins vs paper)");
  common.Register(flags);
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Table II: graph datasets (synthetic stand-ins) ===\n");
  TablePrinter table({"dataset", "nodes", "edges", "triangles", "eta",
                      "eta/tau", "max_deg", "paper(nodes/edges/triangles)"});
  size_t paper_index = 0;
  for (const std::string& name : ctx.dataset_names) {
    WallTimer timer;
    const Dataset d = LoadDataset(ctx, name);
    GraphBuilder builder;
    builder.AddEdges(d.stream.edges());
    const Graph graph = builder.Build(d.stream.num_vertices());
    const GraphStats stats = ComputeGraphStats(graph);
    std::string paper = "-";
    if (paper_index < std::size(kPaperTable2) &&
        ctx.dataset_names.size() == std::size(kPaperTable2)) {
      const PaperRow& row = kPaperTable2[paper_index];
      paper = std::string(row.nodes) + " / " + row.edges + " / " +
              row.triangles;
    }
    table.AddRow({name, std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  std::to_string(d.exact.tau), std::to_string(d.exact.eta),
                  Fmt(static_cast<double>(d.exact.eta) /
                          static_cast<double>(d.exact.tau),
                      3),
                  std::to_string(stats.max_degree), paper});
    ++paper_index;
  }
  table.Print();
  std::printf(
      "\nNote: stand-ins are 1e5-class seeded synthetic graphs; the paper's\n"
      "originals are shown for scale. eta/tau spread is the Figure 1 knob.\n");
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
