// Micro-benchmark: exact counting throughput (ground-truth computation cost
// for the evaluation harness).
#include <benchmark/benchmark.h>

#include "exact/exact_counts.hpp"
#include "exact/streaming_exact.hpp"
#include "gen/dataset_suite.hpp"
#include "gen/holme_kim.hpp"
#include "graph/graph_builder.hpp"

namespace rept {
namespace {

const EdgeStream& ClusteredStream() {
  static const EdgeStream stream = gen::HolmeKim(
      {.num_vertices = 5000, .edges_per_vertex = 8, .triad_probability = 0.6},
      11);
  return stream;
}

void BM_BuildGraph(benchmark::State& state) {
  const EdgeStream& s = ClusteredStream();
  for (auto _ : state) {
    GraphBuilder builder;
    builder.AddEdges(s.edges());
    const Graph g = builder.Build(s.num_vertices());
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_BuildGraph);

void BM_ExactCountsTauOnly(benchmark::State& state) {
  const EdgeStream& s = ClusteredStream();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeExactCounts(s, /*with_eta=*/false).tau);
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_ExactCountsTauOnly);

void BM_ExactCountsWithEta(benchmark::State& state) {
  const EdgeStream& s = ClusteredStream();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeExactCounts(s, /*with_eta=*/true).eta);
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_ExactCountsWithEta);

void BM_StreamingExact(benchmark::State& state) {
  const EdgeStream& s = ClusteredStream();
  for (auto _ : state) {
    StreamingExactCounter counter(s.num_vertices());
    counter.ProcessStream(s);
    benchmark::DoNotOptimize(counter.tau());
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_StreamingExact);

}  // namespace
}  // namespace rept
