// Figure 6 reproduction: mean local triangle count NRMSE vs c at p = 0.1
// (m = 10).
#include "bench_accuracy_figure.hpp"

int main(int argc, char** argv) {
  rept::bench::AccuracyFigureSpec spec;
  spec.title = "Figure 6: local NRMSE vs c, p = 0.1";
  spec.m = 10;
  spec.c_values = {2, 8, 16, 32};
  spec.local = true;
  spec.include_gps = false;
  spec.paper_note =
      "same ordering as Figure 5 at the higher sampling rate; smaller "
      "absolute errors throughout";
  return rept::bench::RunAccuracyFigure(spec, argc, argv);
}
