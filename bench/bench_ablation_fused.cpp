// Ablation: per-instance vs fused-group execution of REPT.
//
// Per-instance mode schedules each of the c logical processors as its own
// parallel task (fine granularity, hashes each edge once per processor).
// Fused mode runs a whole group of m processors in one pass (coarse
// granularity, one hash per edge per group). Results are bit-identical; the
// interesting output is the wall-clock trade-off at different c.
#include <cinttypes>
#include <cmath>

#include "bench_common.hpp"
#include "core/rept_estimator.hpp"
#include "runner/runtime_measure.hpp"
#include "util/check.hpp"

namespace rept::bench {
namespace {

int Main(int argc, char** argv) {
  CommonFlags common;
  uint64_t m = 10;
  uint64_t repeats = 3;
  FlagSet flags("Ablation: REPT per-instance vs fused-group execution");
  common.Register(flags);
  flags.AddUint64("m", &m, "sampling denominator");
  flags.AddUint64("repeats", &repeats, "timed repetitions (median)");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  std::printf("=== Ablation: fused groups, m=%" PRIu64 " ===\n\n", m);
  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    std::printf("--- %s ---\n", name.c_str());
    TablePrinter table(
        {"c", "t_instance", "t_fused", "fused/instance", "same_result"});
    for (uint32_t c : {static_cast<uint32_t>(m) / 2, static_cast<uint32_t>(m),
                       static_cast<uint32_t>(2 * m),
                       static_cast<uint32_t>(3 * m + 3)}) {
      if (c == 0) continue;
      ReptConfig cfg;
      cfg.m = static_cast<uint32_t>(m);
      cfg.c = c;
      cfg.track_local = false;
      cfg.dispatch = DispatchMode::kBroadcast;
      const ReptEstimator instance_mode(cfg);
      cfg.dispatch = DispatchMode::kFused;
      const ReptEstimator fused_mode(cfg);

      const double ti = MeasureRuntime(instance_mode, d.stream, ctx.seed,
                                       ctx.pool.get(),
                                       static_cast<uint32_t>(repeats))
                            .median_seconds;
      const double tf = MeasureRuntime(fused_mode, d.stream, ctx.seed,
                                       ctx.pool.get(),
                                       static_cast<uint32_t>(repeats))
                            .median_seconds;
      const double gi =
          instance_mode.Run(d.stream, ctx.seed, ctx.pool.get()).global;
      const double gf =
          fused_mode.Run(d.stream, ctx.seed, ctx.pool.get()).global;
      table.AddRow({std::to_string(c), Fmt(ti, 3), Fmt(tf, 3),
                    Fmt(tf / ti, 3), gi == gf ? "yes" : "NO"});
      REPT_CHECK(gi == gf);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
