// Micro-benchmark: SampledGraph operations — the estimator inner loop is
// dominated by common-neighbor queries against the sampled subgraph.
#include <benchmark/benchmark.h>

#include "gen/erdos_renyi.hpp"
#include "graph/sampled_graph.hpp"
#include "util/random.hpp"

namespace rept {
namespace {

EdgeStream MakeSample(uint32_t n, uint32_t edges) {
  return gen::ErdosRenyi({.num_vertices = n, .num_edges = edges}, 7);
}

void BM_SampledGraphInsert(benchmark::State& state) {
  const EdgeStream s = MakeSample(10000, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    SampledGraph g;
    for (const Edge& e : s) g.Insert(e.u, e.v);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_SampledGraphInsert)->Arg(1000)->Arg(10000);

void BM_SampledGraphCommonNeighbors(benchmark::State& state) {
  const EdgeStream s = MakeSample(2000, static_cast<uint32_t>(state.range(0)));
  SampledGraph g;
  for (const Edge& e : s) g.Insert(e.u, e.v);
  Rng rng(3);
  for (auto _ : state) {
    const VertexId u = static_cast<VertexId>(rng.Below(2000));
    const VertexId v = static_cast<VertexId>(rng.Below(2000));
    benchmark::DoNotOptimize(g.CountCommonNeighbors(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledGraphCommonNeighbors)->Arg(5000)->Arg(20000);

void BM_SampledGraphChurn(benchmark::State& state) {
  // Reservoir-style insert+erase cycling (TRIEST's steady state).
  const EdgeStream s = MakeSample(5000, 20000);
  SampledGraph g;
  const size_t window = 1000;
  for (size_t i = 0; i < window; ++i) g.Insert(s[i].u, s[i].v);
  size_t head = window;
  size_t tail = 0;
  for (auto _ : state) {
    const Edge& in = s[head % s.size()];
    const Edge& out = s[tail % s.size()];
    g.Erase(out.u, out.v);
    g.Insert(in.u, in.v);
    ++head;
    ++tail;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledGraphChurn);

}  // namespace
}  // namespace rept
