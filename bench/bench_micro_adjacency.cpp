// Micro-benchmark: SampledGraph operations — the estimator inner loop is
// dominated by common-neighbor queries against the sampled subgraph.
//
// Measures the flat, arena-backed SampledGraph against `node`, an in-bench
// replica of the PR-4 structure (std::unordered_map<VertexId,
// std::vector<VertexId>> with sorted-vector neighbor lists), on the four
// workloads the estimators issue:
//
//   insert            build the adjacency from a stream (hash + sorted insert)
//   insert+intersect  the estimator's per-edge sequence at p = 1/20: every
//                     stream edge is intersected against the sampled
//                     subgraph (CountArrival), one in twenty is stored —
//                     the profile of a REPT/MASCOT instance, and the
//                     workload the >= 2x acceptance gate measures
//   intersect-sparse  common-neighbor queries over random pairs against a
//                     sampled-density (inline-list) subgraph
//   intersect-dense   the same against a degree-~40 subgraph, where the
//                     sorted merge itself dominates — since the SIMD kernel
//                     layer (src/simd/) this is the dispatched block-compare
//                     kernel's row, and the flat side is expected to win
//   intersect-hub     skewed queries (degree-~4 leaf vs degree-~5000 hub)
//                     against a dense-hub graph: the SIMD-galloping kernel's
//                     row
//   churn             reservoir steady state: erase one edge, insert another
//
// A second section re-times the kernel-bound workloads (dense, hub, and
// the stage-1 batch hash) at *every* dispatch level the CPU supports via
// simd::ForceIsaLevel, emitting one row per (kernel, isa) with the
// checksum cross-checked across levels — the bench-level form of the
// bit-identical-estimates guarantee. CI's bench-smoke job runs this under
// both the best ISA and REPT_FORCE_SCALAR=1; any cross-level checksum
// divergence exits nonzero.
//
// Results go to BENCH_adjacency.json in the standardized bench schema plus
// a per-workload speedup column. --smoke shrinks everything to a
// CI-friendly second; exit is nonzero if the two implementations disagree
// on results, if any dispatch level disagrees with another, or if any
// workload that is supposed to win falls below 0.9x (a noise margin for
// shared CI runners — a real structural regression lands far lower).
//
//   build/bench/bench_micro_adjacency [--smoke] [--reps 5]
//       [--out BENCH_adjacency.json]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/sampled_graph.hpp"
#include "simd/dispatch.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace rept::bench {
namespace {

// ---------------------------------------------------------------------------
// The PR-4 reference structure, verbatim semantics: hash map vertex ->
// sorted neighbor vector, one heap allocation per vertex, O(deg) memmove
// per insert, two map lookups per intersection.
class NodeSampledGraph {
 public:
  bool Insert(VertexId u, VertexId v) {
    if (u == v) return false;
    std::vector<VertexId>& nu = adjacency_[u];
    if (!SortedInsert(nu, v)) return false;
    SortedInsert(adjacency_[v], u);
    ++num_edges_;
    return true;
  }

  bool Erase(VertexId u, VertexId v) {
    auto iu = adjacency_.find(u);
    if (iu == adjacency_.end()) return false;
    if (!SortedErase(iu->second, v)) return false;
    if (iu->second.empty()) adjacency_.erase(iu);
    auto iv = adjacency_.find(v);
    SortedErase(iv->second, u);
    if (iv->second.empty()) adjacency_.erase(iv);
    --num_edges_;
    return true;
  }

  uint32_t CountCommonNeighbors(VertexId u, VertexId v) const {
    auto iu = adjacency_.find(u);
    if (iu == adjacency_.end()) return 0;
    auto iv = adjacency_.find(v);
    if (iv == adjacency_.end()) return 0;
    const std::vector<VertexId>& a = iu->second;
    const std::vector<VertexId>& b = iv->second;
    uint32_t count = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  uint64_t num_edges() const { return num_edges_; }

 private:
  static bool SortedInsert(std::vector<VertexId>& vec, VertexId x) {
    auto it = std::lower_bound(vec.begin(), vec.end(), x);
    if (it != vec.end() && *it == x) return false;
    vec.insert(it, x);
    return true;
  }
  static bool SortedErase(std::vector<VertexId>& vec, VertexId x) {
    auto it = std::lower_bound(vec.begin(), vec.end(), x);
    if (it == vec.end() || *it != x) return false;
    vec.erase(it);
    return true;
  }

  std::unordered_map<VertexId, std::vector<VertexId>> adjacency_;
  uint64_t num_edges_ = 0;
};

// ---------------------------------------------------------------------------
// Workloads, templated over the graph implementation. Each returns a
// checksum so the compiler cannot elide the work and so both
// implementations can be cross-checked for agreement.

template <typename Graph>
uint64_t RunInsert(const EdgeStream& stream) {
  Graph g;
  for (const Edge& e : stream) g.Insert(e.u, e.v);
  return g.num_edges();
}

template <typename Graph>
uint64_t RunArrival(const EdgeStream& stream, uint32_t m) {
  // CountArrival's shape: every arriving edge is intersected against the
  // current sample; one in m (deterministic stand-in for the REPT bucket
  // hash) is then stored. The sample stays at sampled density — mostly
  // absent endpoints and degree-<=4 lists — exactly the state the
  // estimators query millions of times per second. The flat graph runs its
  // production fast path (the arrival probes feed the insert); the node
  // reference has no such path, faithfully to PR 4.
  Graph g;
  uint64_t completions = 0;
  constexpr size_t kPrefetchAhead = 8;  // as in ReptInstance::ReplayRouted
  for (size_t t = 0; t < stream.size(); ++t) {
    const Edge& e = stream[t];
    const uint64_t hash =
        EdgeKey(e.u, e.v) * uint64_t{0x9E3779B97F4A7C15} >> 33;
    const bool store = hash % m == 0;
    if constexpr (std::is_same_v<Graph, SampledGraph>) {
      if (t + kPrefetchAhead < stream.size()) {
        const Edge& ahead = stream[t + kPrefetchAhead];
        g.PrefetchVertices(ahead.u, ahead.v);
      }
      uint64_t found = 0;
      if (store) {
        const auto probe = g.ProbeCommonNeighbors(
            e.u, e.v, [&found](VertexId) { ++found; });
        g.InsertWithProbe(probe);
      } else {
        g.ForEachCommonNeighbor(e.u, e.v, [&found](VertexId) { ++found; });
      }
      completions += found;
    } else {
      completions += g.CountCommonNeighbors(e.u, e.v);
      if (store) g.Insert(e.u, e.v);
    }
  }
  return completions + g.num_edges();
}

template <typename Graph>
uint64_t RunIntersect(const EdgeStream& stream, VertexId n, uint64_t queries) {
  Graph g;
  for (const Edge& e : stream) g.Insert(e.u, e.v);
  Rng rng(3);
  uint64_t total = 0;
  for (uint64_t q = 0; q < queries; ++q) {
    const VertexId u = static_cast<VertexId>(rng.Below(n));
    const VertexId v = static_cast<VertexId>(rng.Below(n));
    total += g.CountCommonNeighbors(u, v);
  }
  return total;
}

template <typename Graph>
uint64_t RunChurn(const EdgeStream& stream, uint64_t ops) {
  // Reservoir-style insert+erase cycling (TRIEST's steady state).
  Graph g;
  const size_t window = std::min<size_t>(1000, stream.size() / 2);
  for (size_t i = 0; i < window; ++i) g.Insert(stream[i].u, stream[i].v);
  size_t head = window;
  size_t tail = 0;
  for (uint64_t op = 0; op < ops; ++op) {
    const Edge& in = stream[head % stream.size()];
    const Edge& out = stream[tail % stream.size()];
    g.Erase(out.u, out.v);
    g.Insert(in.u, in.v);
    ++head;
    ++tail;
  }
  return g.num_edges();
}

template <typename Graph>
uint64_t RunHubIntersect(const EdgeStream& stream, VertexId hubs, VertexId n,
                         uint64_t queries) {
  // Skewed queries: one degree-~4 leaf against one degree-~thousands hub.
  // The >= 8x degree ratio puts every query on the galloping intersection
  // path (scalar lower_bound on the node side, the SIMD-galloping kernel on
  // the flat side).
  Graph g;
  for (const Edge& e : stream) g.Insert(e.u, e.v);
  Rng rng(5);
  uint64_t total = 0;
  for (uint64_t q = 0; q < queries; ++q) {
    const VertexId leaf =
        hubs + static_cast<VertexId>(rng.Below(uint64_t{n} - hubs));
    const VertexId hub = static_cast<VertexId>(rng.Below(hubs));
    total += g.CountCommonNeighbors(leaf, hub);
  }
  return total;
}

uint64_t RunHashKernel(const std::vector<Edge>& batch, uint64_t iters,
                       uint32_t num_buckets) {
  // The stage-1 BatchRouter loop in isolation: the dispatched batch hash
  // kernel over one sub-batch, repeated. The bucket sum doubles as the
  // cross-level divergence check.
  const simd::KernelTable& kernels = simd::ActiveKernels();
  std::vector<uint32_t> buckets(batch.size());
  uint64_t checksum = 0;
  for (uint64_t it = 0; it < iters; ++it) {
    kernels.hash_buckets(batch.data(), batch.size(),
                         /*seed_offset=*/uint64_t{0x9E3779B97F4A7C15},
                         num_buckets, buckets.data());
    for (const uint32_t b : buckets) checksum += b;
  }
  return checksum;
}

struct WorkloadResult {
  uint64_t checksum = 0;
  double best_seconds = 0.0;  // min over reps (least-noise estimator)
};

template <typename Fn>
WorkloadResult Measure(uint64_t reps, Fn&& run) {
  WorkloadResult result;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    const uint64_t checksum = run();
    const double seconds = timer.Seconds();
    if (rep == 0 || seconds < result.best_seconds) {
      result.best_seconds = seconds;
    }
    result.checksum = checksum;
  }
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  uint64_t reps = 5;
  std::string out = "BENCH_adjacency.json";
  FlagSet flags(
      "SampledGraph micro-benchmarks: flat/arena structures vs the PR-4 "
      "node-based reference (BENCH_adjacency.json)");
  flags.AddBool("smoke", &smoke,
                "tiny sizes + 2 reps: the CI perf-harness canary");
  flags.AddUint64("reps", &reps, "repetitions (best-of wins)");
  flags.AddString("out", &out, "output JSON path");
  ParseOrDie(flags, argc, argv);
  if (smoke) reps = std::min<uint64_t>(reps, 2);

  // The arrival/intersect configuration mirrors the paper's operating
  // point: p = 1/m sampling over a large id space (LiveJournal-class
  // streams keep p|E| ~ hundreds of thousands of edges scattered over
  // millions of ids), so the adjacency working set exceeds mid-level
  // caches and the probe pattern — not the merge — dominates, exactly as
  // in a production instance.
  const uint32_t n_insert = smoke ? 10000 : 300000;
  const uint32_t e_insert = smoke ? 30000 : 900000;
  const uint32_t n_arrival = smoke ? 10000 : 500000;
  const uint32_t e_arrival = smoke ? 100000 : 4000000;
  const uint32_t m_arrival = 20;  // p = 1/20 sampled density
  const uint32_t n_dense = smoke ? 800 : 2000;
  const uint32_t e_dense = smoke ? 8000 : 40000;
  const uint64_t queries = smoke ? 100000 : 2000000;
  const uint64_t churn_ops = smoke ? 100000 : 1000000;
  const VertexId hub_count = 8;
  const VertexId n_hub = smoke ? 2008 : 20008;
  const uint64_t hub_queries = smoke ? 50000 : 500000;
  const uint64_t hash_iters = smoke ? 500 : 4000;

  const EdgeStream sparse = gen::ErdosRenyi(
      {.num_vertices = n_insert, .num_edges = e_insert}, /*seed=*/7);
  const EdgeStream arrival_stream = gen::ErdosRenyi(
      {.num_vertices = n_arrival, .num_edges = e_arrival}, /*seed=*/7);
  // Sampled-density graph for the sparse intersect queries: every m-th edge
  // of the arrival stream (what a p = 1/m instance would have stored).
  EdgeStream sampled_sparse = [&] {
    std::vector<Edge> kept;
    for (size_t i = 0; i < arrival_stream.size(); i += m_arrival) {
      kept.push_back(arrival_stream[i]);
    }
    return EdgeStream("sampled_sparse", n_arrival, std::move(kept));
  }();
  const EdgeStream dense = gen::ErdosRenyi(
      {.num_vertices = n_dense, .num_edges = e_dense}, /*seed=*/7);
  // Dense-hub graph: `hub_count` hubs each adjacent to ~2/hub_count of the
  // leaves (degree in the thousands), leaves at degree ~4 — the skewed
  // shape that drives the galloping intersection path.
  const EdgeStream hub = [&] {
    std::vector<Edge> edges;
    Rng rng(11);
    for (VertexId leaf = hub_count; leaf < n_hub; ++leaf) {
      edges.emplace_back(leaf, static_cast<VertexId>(rng.Below(hub_count)));
      edges.emplace_back(leaf, static_cast<VertexId>(rng.Below(hub_count)));
      edges.emplace_back(
          leaf, hub_count + static_cast<VertexId>(
                                rng.Below(uint64_t{n_hub} - hub_count)));
    }
    return EdgeStream("dense-hub", n_hub, std::move(edges));
  }();

  struct Row {
    std::string workload;
    std::string dataset;
    uint64_t items;
    WorkloadResult node;
    WorkloadResult flat;
  };
  std::vector<Row> rows;

  rows.push_back({"insert", sparse.name(), sparse.size(),
                  Measure(reps,
                          [&] { return RunInsert<NodeSampledGraph>(sparse); }),
                  Measure(reps,
                          [&] { return RunInsert<SampledGraph>(sparse); })});
  rows.push_back(
      {"insert+intersect", arrival_stream.name(), arrival_stream.size(),
       Measure(reps,
               [&] {
                 return RunArrival<NodeSampledGraph>(arrival_stream,
                                                     m_arrival);
               }),
       Measure(reps,
               [&] { return RunArrival<SampledGraph>(arrival_stream,
                                                     m_arrival); })});
  rows.push_back(
      {"intersect-sparse", sampled_sparse.name(), queries,
       Measure(reps,
               [&] {
                 return RunIntersect<NodeSampledGraph>(sampled_sparse,
                                                       n_arrival, queries);
               }),
       Measure(reps,
               [&] {
                 return RunIntersect<SampledGraph>(sampled_sparse, n_arrival,
                                                   queries);
               })});
  rows.push_back(
      {"intersect-dense", dense.name(), queries,
       Measure(reps,
               [&] {
                 return RunIntersect<NodeSampledGraph>(dense, n_dense,
                                                       queries);
               }),
       Measure(reps,
               [&] { return RunIntersect<SampledGraph>(dense, n_dense,
                                                       queries); })});
  rows.push_back(
      {"intersect-hub", hub.name(), hub_queries,
       Measure(reps,
               [&] {
                 return RunHubIntersect<NodeSampledGraph>(hub, hub_count,
                                                          n_hub, hub_queries);
               }),
       Measure(reps,
               [&] {
                 return RunHubIntersect<SampledGraph>(hub, hub_count, n_hub,
                                                      hub_queries);
               })});
  rows.push_back(
      {"churn", dense.name(), churn_ops,
       Measure(reps,
               [&] { return RunChurn<NodeSampledGraph>(dense, churn_ops); }),
       Measure(reps,
               [&] { return RunChurn<SampledGraph>(dense, churn_ops); })});

  // ------------------------------------------------------------------
  // Per-kernel dispatch breakdown: the three dispatched kernels (dense
  // block-compare, gallop, batch hash) at every ISA level this CPU
  // supports. ForceIsaLevel takes precedence over REPT_FORCE_SCALAR, so the
  // forced-scalar CI leg still times every level here; the checksums must
  // agree across levels (the bench-level bit-identity gate).
  struct KernelRow {
    std::string kernel;
    std::string dataset;
    std::string isa;
    uint64_t items;
    WorkloadResult result;
  };
  const std::vector<Edge> hash_batch(arrival_stream.begin(),
                                     arrival_stream.begin() + 4096);
  std::vector<KernelRow> kernel_rows;
  for (const simd::IsaLevel level : simd::SupportedLevels()) {
    simd::ForceIsaLevel(level);
    const std::string isa = simd::IsaName(level);
    kernel_rows.push_back(
        {"intersect-dense", dense.name(), isa, queries,
         Measure(reps, [&] {
           return RunIntersect<SampledGraph>(dense, n_dense, queries);
         })});
    kernel_rows.push_back(
        {"intersect-gallop", hub.name(), isa, hub_queries,
         Measure(reps, [&] {
           return RunHubIntersect<SampledGraph>(hub, hub_count, n_hub,
                                                hub_queries);
         })});
    kernel_rows.push_back(
        {"hash-buckets", arrival_stream.name(), isa,
         hash_iters * hash_batch.size(), Measure(reps, [&] {
           return RunHashKernel(hash_batch, hash_iters, /*num_buckets=*/977);
         })});
  }
  simd::ClearForcedIsaLevel();

  TablePrinter table({"workload", "items", "node ops/s", "flat ops/s",
                      "speedup"});
  BenchJsonWriter json("micro_adjacency");
  json.Meta("smoke", smoke ? "true" : "false");
  json.Meta("reps", BenchJsonWriter::NumU(reps));
  // The level the main (non-breakdown) rows ran at: the CPU's best
  // supported ISA, or scalar under REPT_FORCE_SCALAR.
  json.Meta("dispatch_level",
            BenchJsonWriter::Str(simd::IsaName(simd::ActiveLevel())));
  bool ok = true;
  for (const Row& row : rows) {
    if (row.node.checksum != row.flat.checksum) {
      std::fprintf(stderr, "%s: node/flat checksum mismatch (%llu vs %llu)\n",
                   row.workload.c_str(),
                   static_cast<unsigned long long>(row.node.checksum),
                   static_cast<unsigned long long>(row.flat.checksum));
      ok = false;
    }
    const double node_rate =
        static_cast<double>(row.items) / row.node.best_seconds;
    const double flat_rate =
        static_cast<double>(row.items) / row.flat.best_seconds;
    const double speedup = flat_rate / node_rate;
    // Perf-harness canary with a noise margin for shared CI runners: a
    // real regression of the flat structures lands well below 0.9x. The
    // merge-bound dense row is exempt: it only wins through the SIMD
    // kernels, and the forced-scalar CI leg legitimately sits at parity
    // with the node merge (it would flap on noise alone there); checksum
    // agreement above stays strict.
    if (speedup < 0.9 && row.workload != "intersect-dense") ok = false;
    table.AddRow({row.workload, std::to_string(row.items), Sci(node_rate),
                  Sci(flat_rate), Fmt(speedup, 2)});
    json.Result("flat:" + row.workload, row.dataset, /*threads=*/1, flat_rate,
                {{"speedup_vs_node", BenchJsonWriter::Num(speedup)},
                 {"node_edges_per_sec", BenchJsonWriter::Num(node_rate)},
                 {"items", BenchJsonWriter::NumU(row.items)}});
  }
  table.Print();

  TablePrinter kernel_table({"kernel", "isa", "items", "ops/s"});
  for (const KernelRow& row : kernel_rows) {
    const double rate =
        static_cast<double>(row.items) / row.result.best_seconds;
    kernel_table.AddRow({row.kernel, row.isa, std::to_string(row.items),
                         Sci(rate)});
    json.Result("kernel:" + row.kernel + "@" + row.isa, row.dataset,
                /*threads=*/1, rate,
                {{"kernel", BenchJsonWriter::Str(row.kernel)},
                 {"isa", BenchJsonWriter::Str(row.isa)},
                 {"items", BenchJsonWriter::NumU(row.items)},
                 {"checksum", BenchJsonWriter::NumU(row.result.checksum)}});
    // Every level of a kernel saw identical inputs, so the checksums must
    // be bit-equal — the divergence gate the CI bench-smoke legs rely on.
    for (const KernelRow& other : kernel_rows) {
      if (&other == &row) break;
      if (other.kernel == row.kernel &&
          other.result.checksum != row.result.checksum) {
        std::fprintf(stderr,
                     "%s: checksum diverges between %s (%llu) and %s "
                     "(%llu)\n",
                     row.kernel.c_str(), other.isa.c_str(),
                     static_cast<unsigned long long>(other.result.checksum),
                     row.isa.c_str(),
                     static_cast<unsigned long long>(row.result.checksum));
        ok = false;
      }
    }
  }
  kernel_table.Print();

  if (!json.WriteTo(out)) return 2;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: checksum mismatch across implementations or "
                 "dispatch levels, or flat slower than the node baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rept::bench

int main(int argc, char** argv) { return rept::bench::Main(argc, argv); }
