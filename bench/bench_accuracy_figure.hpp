// Shared driver for the accuracy figures (3, 4: global; 5, 6: local):
// for each dataset, sweep c and print NRMSE per method.
#pragma once

#include <cinttypes>
#include <cmath>

#include "bench_common.hpp"
#include "core/variance.hpp"
#include "runner/accuracy_sweep.hpp"

namespace rept::bench {

struct AccuracyFigureSpec {
  const char* title;
  uint32_t m;
  std::vector<uint32_t> c_values;
  bool local;        // report local NRMSE columns (Figures 5/6)
  bool include_gps;  // paper includes GPS only in the global figures
  const char* paper_note;
};

inline int RunAccuracyFigure(const AccuracyFigureSpec& spec, int argc,
                             char** argv) {
  CommonFlags common;
  std::string csv_path;
  FlagSet flags(spec.title);
  common.Register(flags);
  flags.AddString("csv", &csv_path,
                  "optional path to also write the series as CSV");
  ParseOrDie(flags, argc, argv);
  BenchContext ctx = MakeContext(common);

  CsvWriter csv({"dataset", "c", "metric", "rept", "mascot", "triest", "gps"});

  std::printf("=== %s ===\n", spec.title);
  std::printf("p = 1/%u, runs per point = %" PRIu64 "\n\n", spec.m, ctx.runs);

  for (const std::string& name : ctx.dataset_names) {
    const Dataset d = LoadDataset(ctx, name);
    AccuracySweepConfig cfg;
    cfg.m = spec.m;
    cfg.c_values = spec.c_values;
    cfg.runs = static_cast<uint32_t>(ctx.runs);
    cfg.seed = ctx.seed;
    cfg.evaluate_local = spec.local;
    cfg.include_gps = spec.include_gps;

    WallTimer timer;
    const auto rows = RunAccuracySweep(d.stream, d.exact, cfg, ctx.pool.get());

    std::printf("--- %s (tau=%" PRIu64 ", eta=%" PRIu64 ") ---\n",
                name.c_str(), d.exact.tau, d.exact.eta);
    std::vector<std::string> header = {"c"};
    if (spec.local) {
      header.insert(header.end(),
                    {"REPT", "MASCOT", "TRIEST", "MASCOT/REPT"});
    } else {
      header.insert(header.end(), {"REPT", "MASCOT", "TRIEST"});
      if (spec.include_gps) header.push_back("GPS");
      header.push_back("MASCOT/REPT");
      header.push_back("theory(M/R)");
    }
    TablePrinter table(header);
    for (const auto& row : rows) {
      std::vector<std::string> cells = {std::to_string(row.c)};
      if (spec.local) {
        cells.push_back(Fmt(row.rept_local));
        cells.push_back(Fmt(row.mascot_local));
        cells.push_back(Fmt(row.triest_local));
        cells.push_back(Fmt(row.mascot_local / row.rept_local, 3));
      } else {
        cells.push_back(Sci(row.rept));
        cells.push_back(Sci(row.mascot));
        cells.push_back(Sci(row.triest));
        if (spec.include_gps) cells.push_back(Sci(row.gps));
        cells.push_back(Fmt(row.mascot / row.rept, 3));
        // Predicted NRMSE ratio from the closed forms (§III-C).
        const double tau = static_cast<double>(d.exact.tau);
        const double eta = static_cast<double>(d.exact.eta);
        const double predicted = std::sqrt(
            variance::ParallelMascot(tau, eta, spec.m, row.c) /
            variance::Rept(tau, eta, spec.m, row.c));
        cells.push_back(Fmt(predicted, 3));
      }
      table.AddRow(std::move(cells));
      if (spec.local) {
        csv.AddRow({name, std::to_string(row.c), "local_nrmse",
                    Fmt(row.rept_local, 6), Fmt(row.mascot_local, 6),
                    Fmt(row.triest_local, 6), ""});
      } else {
        csv.AddRow({name, std::to_string(row.c), "global_nrmse",
                    Fmt(row.rept, 6), Fmt(row.mascot, 6),
                    Fmt(row.triest, 6),
                    spec.include_gps ? Fmt(row.gps, 6) : ""});
      }
    }
    table.Print();
    std::printf("sweep wall time: %.1fs\n\n", timer.Seconds());
  }
  std::printf("paper: %s\n", spec.paper_note);
  if (!csv_path.empty()) {
    const Status st = csv.WriteFile(csv_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace rept::bench
