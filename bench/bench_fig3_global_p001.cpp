// Figure 3 reproduction: global triangle count NRMSE vs number of
// processors c at p = 0.01 (m = 100), REPT vs parallel MASCOT / TRIEST /
// GPS across the dataset suite.
#include "bench_accuracy_figure.hpp"

int main(int argc, char** argv) {
  rept::bench::AccuracyFigureSpec spec;
  spec.title = "Figure 3: global NRMSE vs c, p = 0.01";
  spec.m = 100;
  spec.c_values = {20, 80, 160, 320};
  spec.local = false;
  spec.include_gps = true;
  spec.paper_note =
      "REPT several times more accurate; e.g. Twitter at c=320: 8.6x better "
      "than MASCOT/TRIEST, 25.7x better than GPS; gap grows with c";
  return rept::bench::RunAccuracyFigure(spec, argc, argv);
}
